#include "live/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <vector>

#include "live/wire.h"
#include "snapshot/io.h"
#include "telemetry/registry.h"
#include "util/rng.h"

namespace asyncmac::live {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t elapsed_us(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

Tick us_to_ticks(std::int64_t us, std::uint64_t unit_us) {
  return us * kTicksPerUnit / static_cast<std::int64_t>(unit_us);
}

std::int64_t ticks_to_us(Tick ticks, std::uint64_t unit_us) {
  return ticks * static_cast<std::int64_t>(unit_us) / kTicksPerUnit;
}

bool set_error(std::string* error, const std::string& what) {
  if (error) *error = what + ": " + std::strerror(errno);
  return false;
}

int open_udp_socket(const std::string& host, std::uint16_t port,
                    sockaddr_in* bound, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    set_error(error, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (bound) {
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      set_error(error, "bind");
      ::close(fd);
      return -1;
    }
    socklen_t len = sizeof(*bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(bound), &len) != 0) {
      set_error(error, "getsockname");
      ::close(fd);
      return -1;
    }
  } else {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      set_error(error, "connect");
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

/// Atomic port-file write: a polling reader sees nothing or the full line.
bool write_port_file(const std::string& path, std::uint16_t port,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    set_error(error, "open " + tmp);
    return false;
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + path);
    return false;
  }
  return true;
}

struct DelayedSend {
  std::int64_t due_us = 0;  ///< on the daemon's elapsed clock
  sockaddr_in to{};
  std::vector<std::uint8_t> bytes;
};

}  // namespace

int serve_udp(Daemon& daemon, const UdpServeOptions& opt, std::string* error) {
  sockaddr_in bound{};
  const int fd = open_udp_socket(opt.bind_host, opt.port, &bound, error);
  if (fd < 0) return 1;
  const std::uint16_t port = ntohs(bound.sin_port);
  if (!opt.port_file.empty() && !write_port_file(opt.port_file, port, error)) {
    ::close(fd);
    return 1;
  }
  if (opt.on_listening) opt.on_listening(port);

  const Clock::time_point epoch = Clock::now();
  util::Rng emu_rng(opt.emu_seed);
  std::vector<sockaddr_in> addrs(daemon.station_count());
  std::vector<bool> addr_known(daemon.station_count(), false);
  std::deque<DelayedSend> delayed;
  std::vector<std::uint8_t> buf(kDatagramHeaderBytes + kMaxDatagramPayload);
  Tick last_tick = 0;
  std::int64_t last_rx_us = 0;

  const auto flush_due = [&](std::int64_t now_us) {
    while (!delayed.empty() && delayed.front().due_us <= now_us) {
      const DelayedSend& d = delayed.front();
      (void)::sendto(fd, d.bytes.data(), d.bytes.size(), 0,
                     reinterpret_cast<const sockaddr*>(&d.to), sizeof(d.to));
      delayed.pop_front();
    }
  };

  const auto queue_send = [&](StationId to,
                              const std::vector<std::uint8_t>& bytes,
                              std::int64_t now_us) {
    if (!addr_known[to - 1]) return;
    if (opt.emu_loss > 0 && emu_rng.chance(opt.emu_loss)) {
      telemetry::count("live.emu_dropped");
      return;
    }
    std::int64_t delay = static_cast<std::int64_t>(opt.emu_delay_us);
    if (opt.emu_jitter_us > 0)
      delay += static_cast<std::int64_t>(emu_rng.below(opt.emu_jitter_us + 1));
    if (delay == 0 && delayed.empty()) {
      (void)::sendto(fd, bytes.data(), bytes.size(), 0,
                     reinterpret_cast<const sockaddr*>(&addrs[to - 1]),
                     sizeof(addrs[to - 1]));
      return;
    }
    DelayedSend d;
    d.due_us = now_us + delay;
    d.to = addrs[to - 1];
    d.bytes = bytes;
    // Keep the queue due-ordered (jitter can reorder; that is the point).
    auto pos = std::upper_bound(
        delayed.begin(), delayed.end(), d,
        [](const DelayedSend& a, const DelayedSend& b) {
          return a.due_us < b.due_us;
        });
    delayed.insert(pos, std::move(d));
  };

  int rc = 0;
  while (!daemon.done()) {
    const std::int64_t now_us = elapsed_us(epoch);
    flush_due(now_us);
    if (now_us - last_rx_us >
        static_cast<std::int64_t>(opt.idle_timeout_ms) * 1000) {
      if (error) *error = "idle timeout: no datagram received";
      rc = 1;
      break;
    }

    std::int64_t wait_us = 50'000;  // idle-timeout granularity
    if (!delayed.empty())
      wait_us = std::min(wait_us, std::max<std::int64_t>(
                                      0, delayed.front().due_us - now_us));
    pollfd pfd{fd, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>((wait_us + 999) / 1000));
    if (ready < 0) {
      if (errno == EINTR) continue;
      set_error(error, "poll");
      rc = 1;
      break;
    }
    if (ready == 0) continue;

    // Drain everything queued on the socket into one arrival wave.
    std::vector<std::vector<std::uint8_t>> batch;
    const std::int64_t arrival_us = elapsed_us(epoch);
    last_rx_us = arrival_us;
    for (;;) {
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t got =
          ::recvfrom(fd, buf.data(), buf.size(), MSG_DONTWAIT,
                     reinterpret_cast<sockaddr*>(&from), &from_len);
      if (got < 0) break;  // EAGAIN: socket drained
      std::vector<std::uint8_t> bytes(buf.begin(), buf.begin() + got);
      // Learn/refresh the sender's address from the station id in the
      // datagram (the daemon re-validates everything itself).
      StationId sender = kInvalidStation;
      try {
        const Msg m = decode(bytes);
        sender = m.station;
      } catch (const snapshot::SnapshotError&) {
        // Malformed: still hand it to the daemon for counting.
      }
      if (sender >= 1 && sender <= daemon.station_count()) {
        addrs[sender - 1] = from;
        addr_known[sender - 1] = true;
      }
      batch.push_back(std::move(bytes));
    }
    if (batch.empty()) continue;

    const Tick tick = std::max(last_tick, us_to_ticks(arrival_us, opt.unit_us));
    last_tick = tick;
    DaemonActions acts = daemon.on_batch(tick, batch);
    const std::int64_t send_us = elapsed_us(epoch);
    for (const Outgoing& o : acts.sends) queue_send(o.to, o.datagram, send_us);
  }

  // Final Fins may still be queued behind an emulated delay.
  while (!delayed.empty()) flush_due(elapsed_us(epoch));
  ::close(fd);
  if (rc == 0 && daemon.failed()) {
    if (error) *error = "run poisoned: " + daemon.reason();
    rc = 1;
  }
  return rc;
}

int run_station_udp(const UdpStationOptions& opt, std::string* error) {
  const int fd = open_udp_socket(opt.host, opt.port, nullptr, error);
  if (fd < 0) return 1;

  StationMachine machine(opt.station);
  const Clock::time_point epoch = Clock::now();
  std::vector<std::uint8_t> buf(kDatagramHeaderBytes + kMaxDatagramPayload);
  std::optional<Tick> timer;

  const auto apply = [&](StationMachine::Actions acts) {
    for (const auto& bytes : acts.sends)
      (void)::send(fd, bytes.data(), bytes.size(), 0);
    timer = acts.timer;
  };

  apply(machine.on_start(0));
  while (!machine.finished()) {
    const Tick now = us_to_ticks(elapsed_us(epoch), opt.unit_us);
    if (timer && now >= *timer) {
      apply(machine.on_timer(now));
      continue;
    }
    int wait_ms = 1000;
    if (timer) {
      const std::int64_t due_us = ticks_to_us(*timer, opt.unit_us);
      const std::int64_t us = std::max<std::int64_t>(
          0, due_us - elapsed_us(epoch));
      wait_ms = static_cast<int>(std::min<std::int64_t>(
          1000, (us + 999) / 1000));
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      set_error(error, "poll");
      ::close(fd);
      return 1;
    }
    if (ready == 0) continue;
    const ssize_t got = ::recv(fd, buf.data(), buf.size(), 0);
    if (got < 0) continue;
    apply(machine.on_datagram(us_to_ticks(elapsed_us(epoch), opt.unit_us),
                              buf.data(), static_cast<std::size_t>(got)));
  }
  ::close(fd);
  if (machine.exit_code() != 0 && error && error->empty())
    *error = "station gave up (lost daemon or poisoned run)";
  return machine.exit_code();
}

}  // namespace asyncmac::live
