#include "live/station.h"

#include "analysis/registry.h"
#include "snapshot/io.h"
#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::live {

namespace {

struct StationTelemetry {
  telemetry::Counter& rx =
      telemetry::Registry::global().counter("live.datagrams_rx");
  telemetry::Counter& tx =
      telemetry::Registry::global().counter("live.datagrams_tx");
  telemetry::Counter& retransmits =
      telemetry::Registry::global().counter("live.retransmits");
  telemetry::Counter& decode_errors =
      telemetry::Registry::global().counter("live.decode_errors");

  static StationTelemetry& get() {
    static StationTelemetry t;
    return t;
  }
};

}  // namespace

StationMachine::StationMachine(StationConfig cfg) : cfg_(std::move(cfg)) {
  AM_REQUIRE(cfg_.id >= 1, "station id must be >= 1");
  AM_REQUIRE(cfg_.retry_ticks >= 1, "retry timeout must be positive");
  AM_REQUIRE(cfg_.max_retries >= 1, "need at least one retry");
}

StationMachine::~StationMachine() = default;

void StationMachine::fill_timer(Actions& out) const {
  if (phase_ == Phase::kDone) return;
  if (slot_deadline_ &&
      (!retry_deadline_ || *slot_deadline_ <= *retry_deadline_))
    out.timer = slot_deadline_;
  else
    out.timer = retry_deadline_;
}

void StationMachine::send_request(Tick now, const Msg& m, Actions& out) {
  last_sent_ = encode(m);
  out.sends.push_back(last_sent_);
  StationTelemetry::get().tx.add();
  retries_ = 0;
  retry_deadline_ = now + cfg_.retry_ticks;
}

void StationMachine::give_up(int code, Actions& out) {
  phase_ = Phase::kDone;
  exit_code_ = code;
  retry_deadline_.reset();
  slot_deadline_.reset();
  out.finished = true;
  out.exit_code = code;
}

StationMachine::Actions StationMachine::on_start(Tick now) {
  Actions out;
  AM_CHECK(phase_ == Phase::kJoining && last_sent_.empty());
  Msg join;
  join.type = MsgType::kJoin;
  join.station = cfg_.id;
  join.name = cfg_.name;
  send_request(now, join, out);
  fill_timer(out);
  return out;
}

void StationMachine::announce_boundary(Tick now, SlotAction action,
                                       Actions& out) {
  ++slot_index_;
  action_ = action;
  phase_ = Phase::kAwaitGrant;
  Msg b;
  b.type = MsgType::kBoundary;
  b.station = cfg_.id;
  b.slot_index = slot_index_;
  b.action = action;
  send_request(now, b, out);
}

void StationMachine::handle_welcome(Tick now, const Msg& m, Actions& out) {
  if (phase_ != Phase::kJoining) return;  // duplicate
  if (m.station != cfg_.id || m.n < 1 || cfg_.id > m.n || m.bound_r < 1)
    return;
  // Same construction path as the engine: the registry builds one
  // automaton per station; this station keeps only its own.
  std::unique_ptr<sim::Protocol> proto;
  try {
    proto = std::move(analysis::make_protocols(m.name, m.n)[cfg_.id - 1]);
  } catch (const std::invalid_argument&) {
    return;  // unknown protocol name: not a Welcome from our daemon
  }
  ctx_.emplace(cfg_.id, m.n, m.bound_r, m.rng_seed);
  protocol_ = std::move(proto);
  for (const InjectionDelta& d : m.injections) {
    sim::Packet p;
    p.seq = 0;  // seqs stay daemon-side; protocols cannot observe them
    p.station = cfg_.id;
    p.injected_at = d.injected_at;
    p.cost = d.cost;
    ctx_->push(p);
  }
  const SlotAction first = protocol_->next_action(std::nullopt, *ctx_);
  announce_boundary(now, first, out);
}

void StationMachine::handle_grant(Tick now, const Msg& m, Actions& out) {
  (void)out;
  if (phase_ != Phase::kAwaitGrant || m.slot_index != slot_index_) return;
  if (m.length < 1) return;  // nonsense grant; wait for a valid one
  phase_ = Phase::kInSlot;
  // The slot runs [grant arrival, arrival + length) on the station's
  // clock. Under the virtual clock the grant arrives at the boundary
  // tick itself, so the local slot matches the daemon's exactly; over
  // UDP the offset is the RTT, surfaced as live.slot_timer_drift.
  slot_deadline_ = now + m.length;
  retry_deadline_.reset();
  retries_ = 0;
}

void StationMachine::handle_feedback(Tick now, const Msg& m, Actions& out) {
  if (phase_ != Phase::kAwaitFeedback || m.slot_index != slot_index_) return;
  // Engine queue-mutation order: poll pushes happen before the delivery
  // pop at the same event, and the delivered packet is the queue front.
  for (const InjectionDelta& d : m.injections) {
    sim::Packet p;
    p.seq = 0;
    p.station = cfg_.id;
    p.injected_at = d.injected_at;
    p.cost = d.cost;
    ctx_->push(p);
  }
  if (m.delivered) {
    if (ctx_->queue_empty()) return;  // desynced daemon; ignore
    ctx_->pop_front();
  }
  ++completed_;
  const sim::SlotResult result{action_, m.feedback, m.delivered};
  const SlotAction next = protocol_->next_action(result, *ctx_);
  announce_boundary(now, next, out);
}

StationMachine::Actions StationMachine::on_datagram(Tick now,
                                                    const std::uint8_t* data,
                                                    std::size_t size) {
  Actions out;
  if (phase_ == Phase::kDone) {
    out.finished = true;
    out.exit_code = exit_code_;
    return out;
  }
  Msg m;
  try {
    m = decode(data, size);
  } catch (const snapshot::SnapshotError&) {
    StationTelemetry::get().decode_errors.add();
    fill_timer(out);
    return out;
  }
  StationTelemetry::get().rx.add();
  switch (m.type) {
    case MsgType::kWelcome: handle_welcome(now, m, out); break;
    case MsgType::kGrant: handle_grant(now, m, out); break;
    case MsgType::kFeedback: handle_feedback(now, m, out); break;
    case MsgType::kFin:
      give_up(m.ok ? 0 : 1, out);
      return out;
    default: break;  // station->daemon types echoed back: drop
  }
  fill_timer(out);
  return out;
}

StationMachine::Actions StationMachine::on_timer(Tick now) {
  Actions out;
  if (phase_ == Phase::kDone) {
    out.finished = true;
    out.exit_code = exit_code_;
    return out;
  }
  if (phase_ == Phase::kInSlot && slot_deadline_ && now >= *slot_deadline_) {
    slot_deadline_.reset();
    phase_ = Phase::kAwaitFeedback;
    Msg e;
    e.type = MsgType::kSlotEnd;
    e.station = cfg_.id;
    e.slot_index = slot_index_;
    send_request(now, e, out);
  } else if (retry_deadline_ && now >= *retry_deadline_) {
    if (++retries_ > cfg_.max_retries) {
      give_up(1, out);
      return out;
    }
    out.sends.push_back(last_sent_);
    ++retransmits_;
    StationTelemetry::get().tx.add();
    StationTelemetry::get().retransmits.add();
    retry_deadline_ = now + cfg_.retry_ticks;
  }
  fill_timer(out);
  return out;
}

}  // namespace asyncmac::live
