// asyncmac/live/virtual_net.h
//
// Deterministic virtual-clock transport for the live stack: the daemon
// and a set of in-process StationMachines exchange datagrams through an
// event queue driven by a simulated tick clock, with no sockets and no
// wall time. Two jobs:
//
//   1. The sim-vs-live differential. With zero emulation knobs every
//      datagram is delivered at its send tick and every station timer
//      fires exactly on time, so the live stack replays a scenario
//      bit-identically to sim::Engine (tests/test_live_differential.cpp,
//      the live-smoke CI job's cmp).
//   2. Fault rehearsal. Seeded loss/delay/jitter knobs and scripted
//      per-datagram drops exercise the retransmit/dedup machinery
//      deterministically (tests/test_live_service.cpp) — the same
//      failure paths real UDP hits nondeterministically.
//
// Delivery discipline at a tick t: station-side events first (datagram
// deliveries, then due timers, in station order), then all daemon-bound
// datagrams of t as ONE batch — the wave the daemon's phase processing
// expects. A reply sent at t re-enters the same tick's cascade, so a
// zero-latency slot boundary fully settles before the clock advances.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/stability.h"
#include "channel/ledger.h"
#include "energy/meter.h"
#include "live/daemon.h"
#include "live/station.h"
#include "metrics/run_stats.h"
#include "snapshot/checkpoint.h"
#include "trace/recorder.h"
#include "util/rng.h"
#include "util/types.h"

namespace asyncmac::live {

/// Network-emulation knobs, applied independently to every datagram in
/// both directions. All deterministic given the seed.
struct EmulationKnobs {
  double loss = 0.0;   ///< per-datagram drop probability
  Tick delay = 0;      ///< fixed one-way latency (ticks)
  Tick jitter = 0;     ///< extra uniform latency in [0, jitter] ticks
  std::uint64_t seed = 1;
};

class VirtualNet {
 public:
  /// `stations` are borrowed; index i must be the machine for station
  /// id i+1 and every station of the daemon's run must be present.
  VirtualNet(Daemon& daemon, std::vector<StationMachine*> stations,
             EmulationKnobs knobs = {});

  /// Script a drop: the `nth` datagram (0-based, counted per direction
  /// and station, after emulation-knob drops) addressed `to_station`
  /// (true: daemon->station, false: station->daemon) vanishes.
  void add_drop(bool to_station, StationId station, std::uint64_t nth);

  /// Drive the clock until the daemon reports done and every station
  /// machine finished. Returns false on deadlock (no pending events or
  /// timers while unfinished) or after max_events processed events.
  bool run(std::uint64_t max_events = 50'000'000);

  Tick now() const noexcept { return now_; }

 private:
  struct Event {
    Tick time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break within a tick
    StationId station = kInvalidStation;
    bool to_station = false;
    std::vector<std::uint8_t> bytes;
  };
  /// Min-heap order on (time, seq) for the std:: max-heap algorithms.
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return b.time < a.time || (b.time == a.time && b.seq < a.seq);
    }
  };

  void dispatch(StationId station, bool to_station,
                std::vector<std::uint8_t> bytes);
  void apply_station_actions(StationId id, StationMachine::Actions actions);
  Tick latency();

  Daemon& daemon_;
  std::vector<StationMachine*> stations_;
  std::vector<std::optional<Tick>> timers_;
  EmulationKnobs knobs_;
  util::Rng rng_;
  std::vector<Event> queue_;  ///< heap ordered by (time, seq)
  std::uint64_t next_event_seq_ = 0;
  std::map<std::pair<bool, StationId>, std::uint64_t> sent_counts_;
  std::map<std::pair<bool, StationId>, std::vector<std::uint64_t>> drops_;
  Tick now_ = 0;
  bool daemon_done_ = false;
};

/// Everything the CLI and the differential tests need from a completed
/// virtual-clock live run — the exact analogues of engine.stats(),
/// engine.channel_stats(), engine.trace().slots() and a probe's samples.
struct VirtualRunReport {
  bool completed = false;      ///< daemon done + all stations finished
  int station_exit_max = 0;    ///< max station exit code
  bool daemon_failed = false;  ///< run poisoned by a protocol violation
  std::string reason;
  metrics::RunStats stats;
  channel::LedgerStats channel;
  energy::EnergyMeter energy;  ///< all-zero unless spec.energy_enabled
  std::vector<trace::SlotRecord> trace;
  std::vector<Tick> samples;
  analysis::Verdict verdict = analysis::Verdict::kStable;
};

struct VirtualRunOptions {
  int chunks = 8;
  analysis::StabilityConfig stability;
  EmulationKnobs knobs;
  Tick retry_ticks = units(64);
  int max_retries = 25;
  std::uint64_t max_events = 50'000'000;
};

/// Run a whole scenario through daemon + n station machines over the
/// virtual clock. Throws std::invalid_argument on bad spec names (same
/// factories as the engine path).
VirtualRunReport run_virtual(const snapshot::RunSpec& spec,
                             const VirtualRunOptions& opt = {});

}  // namespace asyncmac::live
