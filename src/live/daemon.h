// asyncmac/live/daemon.h
//
// Sans-IO channel-emulator daemon of live mode (docs/LIVE.md). The daemon
// owns the base-station view of a run: the arrival-driven channel
// (live/channel.h), the slot-length adversary, the injection adversary,
// the metrics collector, the trace recorder and the backlog samples the
// stability verdict is computed from. Stations own nothing but their
// protocol automaton — every observable (feedback, injections, slot
// grants) crosses the wire.
//
// The daemon is a pure state machine: the transport (live/virtual_net.h
// for deterministic tests, live/udp.h for real sockets) hands it batches
// of datagrams that arrived at one tick, and it returns the datagrams to
// send. No sockets, clocks or threads in here.
//
// ## Wave processing and sim-equivalence
//
// A batch ("wave") at tick t is processed in three phases, each walking
// its messages in ascending station order:
//   A. close — every SlotEnd's transmission interval is closed at t
//      (so feedback queries in phase B see all ends <= t decided);
//   B. settle — per ending slot: poll the injection adversary, query
//      feedback, apply delivery, record metrics/trace, reply Feedback;
//   C. commit — per Boundary: fix the next slot's begin at t, ask the
//      slot policy for its length, register the transmission, reply
//      Grant.
// This reproduces sim::Engine's per-event loop exactly when datagrams
// arrive at their nominal times: the engine processes slot-end events in
// (end, station) order, polls before feedback, and registers the next
// slot at the same event — phase C's begins at t cannot affect phase B's
// feedback for slots ending at t (half-open intervals), and the poll /
// begin interleaving difference is unobservable to every injector (none
// reads channel_stats()). The virtual-clock differential pins this:
// identical feedback sequences, stats, trace and verdict vs sim::Engine
// (tests/test_live_differential.cpp).
//
// ## Loss and reordering
//
// Replies are idempotent: the last datagram sent to each station is
// cached, and a retransmitted Join/Boundary/SlotEnd for an
// already-settled step resends the cache (counted as live.late_packets).
// Stale or out-of-window indices are dropped. Malformed datagrams are
// dropped and counted — a live daemon must never crash on socket bytes.
//
// ## Failure semantics
//
// A station that violates the protocol (transmit with an empty mirror
// queue, control slot in a no-control model, boundary while a slot is
// open) poisons the run: every station receives Fin{ok=false, reason}
// and the daemon reports failure. Horizon completion sends
// Fin{ok=true, "horizon"} per station once its next slot would end past
// the horizon — the same cut sim::Engine::run(until(H)) makes.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stability.h"
#include "channel/ledger.h"
#include "energy/meter.h"
#include "live/channel.h"
#include "live/wire.h"
#include "metrics/collector.h"
#include "sim/injection.h"
#include "sim/packet.h"
#include "sim/slot_policy.h"
#include "snapshot/checkpoint.h"
#include "trace/recorder.h"
#include "util/types.h"

namespace asyncmac::live {

struct DaemonConfig {
  /// The run being emulated — the same declarative spec the engine,
  /// checkpoints and the CLI share. horizon_units bounds the run;
  /// record_trace enables the recorder; prune_interval paces channel
  /// pruning (in processed slot ends).
  snapshot::RunSpec spec;
  /// Backlog sampling for the stability verdict: queued cost is sampled
  /// at `chunks` equal boundaries of the horizon, exactly like
  /// analysis::probe_stability, and classified with the same procedure.
  int chunks = 8;
  analysis::StabilityConfig stability;
};

/// A datagram addressed to one station (the transport owns the mapping
/// from StationId to socket address / machine instance).
struct Outgoing {
  StationId to = kInvalidStation;
  std::vector<std::uint8_t> datagram;
};

struct DaemonActions {
  std::vector<Outgoing> sends;
  bool done = false;  ///< all stations finned (or the run failed)
};

class Daemon : public sim::EngineView {
 public:
  /// Throws std::invalid_argument on unknown protocol/policy/injector
  /// names or degenerate parameters (same factories as the engine path).
  explicit Daemon(DaemonConfig cfg);

  /// Process every datagram that arrived at tick `now` (non-decreasing
  /// across calls). The transport must batch same-tick arrivals: the
  /// wave phases rely on seeing all of a tick's SlotEnds together.
  DaemonActions on_batch(Tick now, const std::vector<std::vector<std::uint8_t>>& datagrams);

  bool done() const noexcept { return done_; }
  /// True when the run ended on a protocol violation instead of the
  /// horizon; reason() describes it.
  bool failed() const noexcept { return failed_; }
  const std::string& reason() const noexcept { return reason_; }

  const metrics::RunStats& stats() const noexcept { return metrics_.stats(); }
  const channel::LedgerStats& live_channel_stats() const noexcept {
    return channel_.stats();
  }
  const trace::Recorder& trace() const noexcept { return trace_; }
  /// Per-station energy slot counts (all-zero unless spec.energy_enabled).
  const energy::EnergyMeter& energy_meter() const noexcept { return meter_; }
  const std::vector<Tick>& backlog_samples() const noexcept { return samples_; }
  /// Valid once done(): the same verdict probe_stability would emit for
  /// these samples.
  analysis::Verdict verdict() const;

  Tick horizon_ticks() const noexcept { return horizon_ticks_; }
  std::uint32_t station_count() const noexcept { return n_; }
  bool started() const noexcept { return started_; }

  // sim::EngineView (the injection adversary's window on the run).
  Tick now() const override { return now_; }
  std::uint32_t n() const override { return n_; }
  std::uint32_t bound_r() const override { return cfg_.spec.bound_r; }
  std::size_t queue_size(StationId station) const override;
  Tick queue_cost(StationId station) const override;
  const channel::LedgerStats& channel_stats() const override {
    return channel_.stats();
  }
  StationId last_successful_station() const override { return last_successful_; }
  Tick fixed_slot_length(StationId station) const override;

 private:
  /// Mirror of one station's engine-side state. The daemon replays the
  /// queue mutations the engine would make (poll pushes, delivery pops),
  /// so packet seqs here are the engine's real seqs; the station's own
  /// context sees seq 0, which no protocol can observe.
  struct Mirror {
    bool joined = false;
    bool finned = false;
    std::deque<sim::Packet> queue;
    Tick queue_cost = 0;
    SlotIndex slot_index = 0;  ///< last committed slot (0 before the first)
    Tick slot_begin = 0;
    Tick slot_end_granted = 0;
    SlotAction action = SlotAction::kListen;
    bool awaiting_end = false;  ///< slot committed, SlotEnd not settled yet
    /// End actually used for the slot that just settled (arrival-clamped).
    Tick slot_close_end = 0;
    std::vector<InjectionDelta> pending;  ///< injections not yet shipped
    std::vector<std::uint8_t> last_reply;  ///< cache for idempotent resend
  };

  Mirror& mirror(StationId id);
  void handle_join(Tick t, const Msg& m, DaemonActions& out);
  void start_run(Tick t, DaemonActions& out);
  bool accept_slot_end(Tick t, const Msg& m, DaemonActions& out);
  void settle_slot(Tick t, StationId id, DaemonActions& out);
  void handle_boundary(Tick t, const Msg& m, DaemonActions& out);
  void poll_injections(Tick t);
  void record_samples_before(Tick t);
  void fin_station(StationId id, bool ok, const std::string& why,
                   DaemonActions& out);
  void fail_run(const std::string& why, DaemonActions& out);
  void maybe_prune();
  void check_done(DaemonActions& out);
  void send(StationId to, const Msg& m, DaemonActions& out, bool cache = true);
  void resend_cached(StationId to, DaemonActions& out);

  DaemonConfig cfg_;
  std::uint32_t n_;
  Tick horizon_ticks_;
  Tick max_slot_ticks_;
  std::unique_ptr<sim::SlotPolicy> policy_;
  std::unique_ptr<sim::InjectionPolicy> injector_;
  LiveChannel channel_;
  metrics::Collector metrics_;
  energy::EnergyMeter meter_;
  trace::Recorder trace_;
  std::vector<Mirror> mirrors_;
  std::vector<std::uint64_t> rng_seeds_;  ///< per-station, engine order
  std::vector<sim::Injection> injection_buffer_;

  Tick now_ = 0;
  bool started_ = false;
  bool done_ = false;
  bool failed_ = false;
  std::string reason_;
  std::uint32_t joined_ = 0;
  std::uint32_t finned_ = 0;
  StationId last_successful_ = kInvalidStation;
  PacketSeq next_seq_ = 1;
  Tick last_injection_time_ = 0;
  std::uint64_t settled_since_prune_ = 0;

  Tick sample_step_ = 0;
  int next_sample_ = 1;
  std::vector<Tick> samples_;
};

}  // namespace asyncmac::live
