// asyncmac/live/channel.h
//
// Arrival-driven channel model for the live daemon. The simulation
// ledger (channel/ledger.h) requires every transmission's end time at
// add() time — the engine knows it, because the slot policy fixes the
// slot length at the slot's begin event. A live daemon does not: a
// station's transmission ends when its SlotEnd datagram *arrives*, so
// intervals must stay open until then.
//
// LiveChannel therefore keeps two kinds of entries in its begin-sorted
// window:
//   * open     — begin known, end unknown (stored as kTickInfinity);
//   * closed   — end fixed by the SlotEnd arrival, success decided.
//
// It answers the exact same questions as the ledger, with the same
// half-open interval rules (channel/transmission.h):
//   ack     — a successful transmission ended at e in (s, t];
//   busy    — otherwise, some transmission overlaps [s, t);
//   silence — otherwise.
// An open transmission can never ack (its end lies in the future) but
// does make overlapping slots busy: treating its unknown end as +inf is
// exact, because the daemon closes every transmission whose end is <= t
// before answering a feedback query at t (wave phase A, live/daemon.h).
//
// Stats parity: LedgerStats fields are bumped at the same logical points
// as the ledger — transmissions/control_transmissions at registration,
// success/collision tallies when the interval's end passes — so a
// virtual-clock live run reports byte-identical channel stats to
// sim::Engine (pinned by tests/test_live_channel and the differential).
#pragma once

#include <cstddef>
#include <deque>

#include "channel/ledger.h"
#include "channel/transmission.h"
#include "util/types.h"

namespace asyncmac::live {

class LiveChannel {
 public:
  /// `restrained` selects the k-restrained channel; admission verdicts
  /// are decided at begin_tx (the on-air census needs no end times: open
  /// entries count with end = +inf, exactly like the ledger's heap of
  /// not-yet-expired ends). Default is unrestrained.
  explicit LiveChannel(channel::RestrainedSpec restrained = {})
      : restrained_(restrained) {}

  const channel::RestrainedSpec& restrained() const noexcept {
    return restrained_;
  }

  /// Register an open transmission starting at `begin`. Begins must be
  /// non-decreasing across calls (the daemon processes waves in arrival
  /// order); a station may have at most one open transmission. On a
  /// restrained channel the admission verdict is fixed here; a rejected
  /// transmission is decided unsuccessful immediately (it still awaits
  /// its SlotEnd to fix the interval's end, but never touches the
  /// medium: overlap scans and feedback skip it).
  void begin_tx(StationId station, Tick begin, bool is_control,
                PacketSeq packet);

  /// Close `station`'s open transmission at `end` (its SlotEnd arrival),
  /// decide success against every other known interval and update stats.
  /// Returns whether the transmission was successful. Requires end >
  /// begin and that every transmission with begin < end has already been
  /// registered (the daemon's wave ordering guarantees this).
  bool close_tx(StationId station, Tick end);

  /// Exact feedback for slot [s, t). Requires every transmission ending
  /// at or before t to be closed already (phase A before phase B).
  Feedback feedback(Tick s, Tick t) const;

  /// Success verdict of `station`'s closed transmission ending at `end`
  /// (the daemon's ack-ownership check under a reject-mode restrained
  /// channel — mirrors Ledger::transmission_successful).
  bool transmission_successful(StationId station, Tick end) const;

  /// Drop closed transmissions with end <= horizon; the daemon passes the
  /// minimum current-slot begin over all stations, so no future feedback
  /// query or success decision can reference a dropped interval (the same
  /// argument as Ledger::prune_before). Open entries are never dropped.
  void prune_before(Tick horizon);

  bool has_open(StationId station) const;

  const channel::LedgerStats& stats() const noexcept { return stats_; }
  std::size_t window_size() const noexcept { return window_.size(); }

 private:
  std::deque<channel::Transmission> window_;  ///< begin-sorted; open: end=inf
  channel::RestrainedSpec restrained_;
  channel::LedgerStats stats_;
  Tick last_begin_ = 0;
  std::size_t open_count_ = 0;
};

}  // namespace asyncmac::live
