#include "live/channel.h"

#include "util/check.h"

namespace asyncmac::live {

using channel::intervals_overlap;
using channel::Transmission;

void LiveChannel::begin_tx(StationId station, Tick begin, bool is_control,
                           PacketSeq packet) {
  AM_CHECK_MSG(begin >= last_begin_, "transmission begins must not decrease");
  AM_CHECK_MSG(!has_open(station),
               "station " << station << " already has an open transmission");
  last_begin_ = begin;
  Transmission tx;
  tx.station = station;
  tx.begin = begin;
  tx.end = kTickInfinity;  // open: end fixed by the SlotEnd arrival
  tx.is_control = is_control;
  tx.packet = packet;
  if (restrained_.enabled()) {
    // On-air census at `begin`: non-rejected entries still occupying the
    // medium. Open entries count unconditionally (end = +inf); pruned
    // entries ended at or below every live begin and cannot count.
    std::uint32_t on_air = 0;
    for (const Transmission& o : window_) {
      if (static_cast<channel::Admission>(o.admission) ==
          channel::Admission::kRejected)
        continue;
      if (o.end > begin) ++on_air;
    }
    if (on_air >= restrained_.k) {
      if (restrained_.jam) {
        tx.admission = static_cast<std::uint8_t>(channel::Admission::kJammed);
        ++stats_.jammed;
      } else {
        tx.admission =
            static_cast<std::uint8_t>(channel::Admission::kRejected);
        tx.decided = true;  // never reaches the medium; unsuccessful now
        ++stats_.rejected;
        ++stats_.collided;
      }
    }
  }
  window_.push_back(tx);
  ++open_count_;
  ++stats_.transmissions;
  if (is_control) ++stats_.control_transmissions;
}

bool LiveChannel::close_tx(StationId station, Tick end) {
  // The open entry is near the back (it was registered at the station's
  // current slot begin); scan backwards. Openness is end == +inf, not
  // !decided: a rejected transmission is decided at begin_tx yet still
  // awaits its SlotEnd here.
  std::size_t self = window_.size();
  for (std::size_t i = window_.size(); i-- > 0;) {
    if (window_[i].station == station && window_[i].end == kTickInfinity) {
      self = i;
      break;
    }
  }
  AM_CHECK_MSG(self < window_.size(),
               "station " << station << " has no open transmission");
  Transmission& tx = window_[self];
  AM_CHECK_MSG(end > tx.begin, "transmission must have positive duration");
  tx.end = end;
  --open_count_;
  if (static_cast<channel::Admission>(tx.admission) ==
      channel::Admission::kRejected) {
    // Decided (and tallied) at begin_tx; only the interval end was open.
    return false;
  }
  tx.decided = true;

  // Success iff no other non-rejected interval overlaps [begin, end).
  // Open entries count with end = +inf; closed-and-pruned entries cannot
  // overlap (prune_before's horizon argument is below every live begin).
  bool successful = true;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (i == self) continue;
    const Transmission& o = window_[i];
    if (static_cast<channel::Admission>(o.admission) ==
        channel::Admission::kRejected)
      continue;
    if (intervals_overlap(tx.begin, tx.end, o.begin, o.end)) {
      successful = false;
      break;
    }
  }
  tx.successful = successful;

  if (successful) {
    ++stats_.successful;
    if (tx.is_control) {
      stats_.successful_control_time += tx.duration();
    } else {
      ++stats_.successful_packets;
      stats_.successful_packet_time += tx.duration();
    }
  } else {
    ++stats_.collided;
  }
  return successful;
}

Feedback LiveChannel::feedback(Tick s, Tick t) const {
  AM_CHECK(s < t);
  bool busy = false;
  for (const Transmission& tx : window_) {
    // Rejected transmissions never reached the medium: no ack, no busy.
    if (static_cast<channel::Admission>(tx.admission) ==
        channel::Admission::kRejected)
      continue;
    if (tx.decided && tx.successful && tx.end > s && tx.end <= t)
      return Feedback::kAck;
    if (!busy && intervals_overlap(tx.begin, tx.end, s, t)) busy = true;
  }
  return busy ? Feedback::kBusy : Feedback::kSilence;
}

bool LiveChannel::transmission_successful(StationId station, Tick end) const {
  for (std::size_t i = window_.size(); i-- > 0;) {
    if (window_[i].station == station && window_[i].end == end) {
      AM_CHECK(window_[i].decided);  // rejected entries decide at begin_tx
      return window_[i].successful;
    }
  }
  AM_CHECK_MSG(false, "no transmission of station " << station
                                                    << " ending at " << end);
  return false;
}

void LiveChannel::prune_before(Tick horizon) {
  while (!window_.empty() && window_.front().decided &&
         window_.front().end <= horizon) {
    window_.pop_front();
  }
}

bool LiveChannel::has_open(StationId station) const {
  if (open_count_ == 0) return false;
  for (std::size_t i = window_.size(); i-- > 0;) {
    if (window_[i].station == station && window_[i].end == kTickInfinity)
      return true;
  }
  return false;
}

}  // namespace asyncmac::live
