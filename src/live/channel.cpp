#include "live/channel.h"

#include "util/check.h"

namespace asyncmac::live {

using channel::intervals_overlap;
using channel::Transmission;

void LiveChannel::begin_tx(StationId station, Tick begin, bool is_control,
                           PacketSeq packet) {
  AM_CHECK_MSG(begin >= last_begin_, "transmission begins must not decrease");
  AM_CHECK_MSG(!has_open(station),
               "station " << station << " already has an open transmission");
  last_begin_ = begin;
  Transmission tx;
  tx.station = station;
  tx.begin = begin;
  tx.end = kTickInfinity;  // open: end fixed by the SlotEnd arrival
  tx.is_control = is_control;
  tx.packet = packet;
  window_.push_back(tx);
  ++open_count_;
  ++stats_.transmissions;
  if (is_control) ++stats_.control_transmissions;
}

bool LiveChannel::close_tx(StationId station, Tick end) {
  // The open entry is near the back (it was registered at the station's
  // current slot begin); scan backwards.
  std::size_t self = window_.size();
  for (std::size_t i = window_.size(); i-- > 0;) {
    if (window_[i].station == station && !window_[i].decided) {
      self = i;
      break;
    }
  }
  AM_CHECK_MSG(self < window_.size(),
               "station " << station << " has no open transmission");
  Transmission& tx = window_[self];
  AM_CHECK_MSG(end > tx.begin, "transmission must have positive duration");
  tx.end = end;
  tx.decided = true;
  --open_count_;

  // Success iff no other interval overlaps [begin, end). Open entries
  // count with end = +inf; closed-and-pruned entries cannot overlap
  // (prune_before's horizon argument is below every live begin).
  bool successful = true;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (i == self) continue;
    const Transmission& o = window_[i];
    if (intervals_overlap(tx.begin, tx.end, o.begin, o.end)) {
      successful = false;
      break;
    }
  }
  tx.successful = successful;

  if (successful) {
    ++stats_.successful;
    if (tx.is_control) {
      stats_.successful_control_time += tx.duration();
    } else {
      ++stats_.successful_packets;
      stats_.successful_packet_time += tx.duration();
    }
  } else {
    ++stats_.collided;
  }
  return successful;
}

Feedback LiveChannel::feedback(Tick s, Tick t) const {
  AM_CHECK(s < t);
  bool busy = false;
  for (const Transmission& tx : window_) {
    if (tx.decided && tx.successful && tx.end > s && tx.end <= t)
      return Feedback::kAck;
    if (!busy && intervals_overlap(tx.begin, tx.end, s, t)) busy = true;
  }
  return busy ? Feedback::kBusy : Feedback::kSilence;
}

void LiveChannel::prune_before(Tick horizon) {
  while (!window_.empty() && window_.front().decided &&
         window_.front().end <= horizon) {
    window_.pop_front();
  }
}

bool LiveChannel::has_open(StationId station) const {
  if (open_count_ == 0) return false;
  for (std::size_t i = window_.size(); i-- > 0;) {
    if (window_[i].station == station && !window_[i].decided) return true;
  }
  return false;
}

}  // namespace asyncmac::live
