// asyncmac/live/udp.h
//
// Real-socket transport for the live stack (docs/LIVE.md): a poll()-based
// UDP event loop around the sans-IO Daemon and StationMachine. All
// protocol logic lives in those machines; this layer only moves datagrams
// and converts wall time to ticks.
//
// Clock mapping: each process anchors tick 0 at its own entry into the
// loop and converts monotonic elapsed microseconds to ticks via
// `unit_us` (wall microseconds per model time unit). Absolute ticks are
// never compared across processes — the daemon times arrivals on its own
// clock, stations only schedule relative durations — so the anchors need
// not agree, but `unit_us` must (it scales slot lengths to wall time).
//
// Emulation knobs (daemon side, applied to replies): probabilistic loss
// and fixed+uniform-jitter delay, seeded and deterministic in *decision*
// (which datagrams are dropped/delayed) though not in wall timing.
// They exist to exercise station retransmit paths over real sockets.
//
// Failure semantics: the daemon gives up (exit 1) after idle_timeout_ms
// without any datagram — a dead station set must not hang CI; stations
// give up via StationConfig::max_retries. Port 0 binds an ephemeral
// port; the bound port is reported through on_listening and port_file
// (written atomically via rename, so a polling reader never sees a
// partial write).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "live/daemon.h"
#include "live/station.h"

namespace asyncmac::live {

struct UdpServeOptions {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral
  std::string port_file;   ///< when set, bound port is written here
  std::uint64_t unit_us = 1000;  ///< wall microseconds per time unit
  std::uint64_t idle_timeout_ms = 30000;
  /// Reply emulation knobs.
  double emu_loss = 0.0;
  std::uint64_t emu_delay_us = 0;
  std::uint64_t emu_jitter_us = 0;
  std::uint64_t emu_seed = 1;
  /// Called once the socket is bound (before the loop blocks).
  std::function<void(std::uint16_t)> on_listening;
};

/// Drive `daemon` over UDP until the run completes. Returns 0 on a clean
/// horizon completion, 1 on failure (bind error, idle timeout, poisoned
/// run); `error` (optional) receives a description. The caller reads
/// stats/trace/verdict from the daemon afterwards.
int serve_udp(Daemon& daemon, const UdpServeOptions& opt,
              std::string* error = nullptr);

struct UdpStationOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t unit_us = 1000;
  StationConfig station;
};

/// Run one station client against a live daemon. Returns the machine's
/// exit code (0 clean Fin, 1 poisoned run or lost daemon).
int run_station_udp(const UdpStationOptions& opt, std::string* error = nullptr);

}  // namespace asyncmac::live
