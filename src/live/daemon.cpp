#include "live/daemon.h"

#include <algorithm>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "snapshot/io.h"
#include "telemetry/registry.h"
#include "util/check.h"
#include "util/rng.h"

namespace asyncmac::live {

namespace {

// Write-only instruments (docs/OBSERVABILITY.md). Live mode is
// network-paced, not CPU-paced, so instruments are bumped directly — no
// batching like the engine hot loop needs.
struct LiveTelemetry {
  telemetry::Counter& rx =
      telemetry::Registry::global().counter("live.datagrams_rx");
  telemetry::Counter& tx =
      telemetry::Registry::global().counter("live.datagrams_tx");
  telemetry::Counter& late =
      telemetry::Registry::global().counter("live.late_packets");
  telemetry::Counter& decode_errors =
      telemetry::Registry::global().counter("live.decode_errors");
  telemetry::MaxGauge& drift =
      telemetry::Registry::global().gauge("live.slot_timer_drift");

  static LiveTelemetry& get() {
    static LiveTelemetry t;
    return t;
  }
};

}  // namespace

Daemon::Daemon(DaemonConfig cfg)
    : cfg_(std::move(cfg)),
      n_(cfg_.spec.n),
      horizon_ticks_(cfg_.spec.horizon_units * kTicksPerUnit),
      max_slot_ticks_(static_cast<Tick>(cfg_.spec.bound_r) * kTicksPerUnit),
      channel_(cfg_.spec.restrained()),
      metrics_(cfg_.spec.n),
      meter_(cfg_.spec.n) {
  AM_REQUIRE(n_ >= 1, "need at least one station");
  AM_REQUIRE(cfg_.spec.bound_r >= 1, "R must be >= 1");
  AM_REQUIRE(cfg_.spec.horizon_units >= 1, "horizon must be positive");
  AM_REQUIRE(cfg_.chunks >= 1, "need at least one sampling chunk");
  AM_REQUIRE(cfg_.spec.prune_interval >= 1, "prune interval must be >= 1");

  policy_ = adversary::make_slot_policy(cfg_.spec.slot_policy, n_,
                                        cfg_.spec.bound_r, cfg_.spec.seed);
  if (cfg_.spec.has_injector)
    injector_ = adversary::make_injector(cfg_.spec.injector);

  // Per-station protocol RNG seeds, drawn exactly as sim::Engine draws
  // them so a station's randomized protocol walks the same stream.
  util::Rng seeder(cfg_.spec.seed);
  rng_seeds_.reserve(n_);
  for (std::uint32_t i = 0; i < n_; ++i) rng_seeds_.push_back(seeder.next());

  mirrors_.resize(n_);
  sample_step_ = horizon_ticks_ / cfg_.chunks;
  AM_REQUIRE(sample_step_ >= 1, "horizon too short for the chunk count");
}

Daemon::Mirror& Daemon::mirror(StationId id) {
  AM_CHECK(id >= 1 && id <= n_);
  return mirrors_[id - 1];
}

std::size_t Daemon::queue_size(StationId station) const {
  AM_CHECK(station >= 1 && station <= n_);
  return mirrors_[station - 1].queue.size();
}

Tick Daemon::queue_cost(StationId station) const {
  AM_CHECK(station >= 1 && station <= n_);
  return mirrors_[station - 1].queue_cost;
}

Tick Daemon::fixed_slot_length(StationId station) const {
  return policy_->fixed_length(station);
}

analysis::Verdict Daemon::verdict() const {
  return analysis::classify_backlog_samples(samples_, cfg_.stability);
}

void Daemon::send(StationId to, const Msg& m, DaemonActions& out, bool cache) {
  std::vector<std::uint8_t> bytes = encode(m);
  if (cache) mirror(to).last_reply = bytes;
  out.sends.push_back({to, std::move(bytes)});
  LiveTelemetry::get().tx.add();
}

void Daemon::resend_cached(StationId to, DaemonActions& out) {
  Mirror& m = mirror(to);
  LiveTelemetry::get().late.add();
  if (m.last_reply.empty()) return;
  out.sends.push_back({to, m.last_reply});
  LiveTelemetry::get().tx.add();
}

void Daemon::poll_injections(Tick t) {
  if (!injector_) return;
  injection_buffer_.clear();
  injector_->poll(t, *this, injection_buffer_);
  for (const sim::Injection& inj : injection_buffer_) {
    AM_CHECK_MSG(inj.time <= t, "injection in the future");
    AM_CHECK_MSG(inj.time >= last_injection_time_,
                 "injection times must be non-decreasing");
    AM_CHECK(inj.station >= 1 && inj.station <= n_);
    AM_CHECK_MSG(inj.cost >= kTicksPerUnit && inj.cost <= max_slot_ticks_,
                 "packet cost must lie in [1, R] time units");
    last_injection_time_ = inj.time;
    Mirror& m = mirrors_[inj.station - 1];
    sim::Packet p;
    p.seq = next_seq_++;
    p.station = inj.station;
    p.injected_at = inj.time;
    p.cost = inj.cost;
    m.queue.push_back(p);
    m.queue_cost += p.cost;
    m.pending.push_back({inj.time, inj.cost});
    metrics_.on_injection(inj.station, inj.cost, t);
  }
}

void Daemon::record_samples_before(Tick t) {
  // probe_stability samples after running through each boundary, so a
  // boundary equal to the current wave time is sampled only once a later
  // wave (or completion) establishes that every event at it has settled.
  while (next_sample_ <= cfg_.chunks &&
         sample_step_ * next_sample_ < t) {
    samples_.push_back(metrics_.queued_cost());
    ++next_sample_;
  }
}

void Daemon::start_run(Tick t, DaemonActions& out) {
  started_ = true;
  // Packets injected at time 0 are visible to the very first decision —
  // the engine polls once in its constructor. Under the virtual clock t
  // is 0 here; over UDP it is the last Join's arrival.
  poll_injections(t);
  for (StationId id = 1; id <= n_; ++id) {
    Mirror& m = mirrors_[id - 1];
    Msg w;
    w.type = MsgType::kWelcome;
    w.station = id;
    w.name = cfg_.spec.protocol;
    w.n = n_;
    w.bound_r = cfg_.spec.bound_r;
    w.rng_seed = rng_seeds_[id - 1];
    w.horizon_ticks = horizon_ticks_;
    w.injections = std::move(m.pending);
    m.pending.clear();
    send(id, w, out);
  }
}

void Daemon::handle_join(Tick t, const Msg& m, DaemonActions& out) {
  Mirror& st = mirror(m.station);
  if (st.finned) {
    resend_cached(m.station, out);
    return;
  }
  if (!st.joined) {
    st.joined = true;
    ++joined_;
    if (joined_ == n_ && !started_) start_run(t, out);
    return;
  }
  // Duplicate Join. Before the station committed its first slot the
  // cached reply is its Welcome — resend it (the original was lost).
  // Afterwards the Join is stale noise.
  if (started_ && st.slot_index == 0) {
    resend_cached(m.station, out);
  } else {
    LiveTelemetry::get().late.add();
  }
}

bool Daemon::accept_slot_end(Tick t, const Msg& m, DaemonActions& out) {
  Mirror& st = mirror(m.station);
  if (!started_ || !st.joined || st.finned) {
    resend_cached(m.station, out);
    return false;
  }
  if (!st.awaiting_end || m.slot_index != st.slot_index) {
    // Already settled (Feedback lost) -> resend; anything else is stale.
    if (m.slot_index == st.slot_index && !st.awaiting_end) {
      resend_cached(m.station, out);
    } else {
      LiveTelemetry::get().late.add();
    }
    return false;
  }

  // The same horizon cut as Engine::run(until(H)): a slot whose nominal
  // end lies past the horizon is never settled; its transmission stays
  // registered but undecided, exactly like the engine's ledger.
  if (st.slot_end_granted > horizon_ticks_) {
    fin_station(m.station, /*ok=*/true, "horizon", out);
    return false;
  }

  const Tick nominal = st.slot_end_granted;
  const Tick drift = t >= nominal ? t - nominal : nominal - t;
  LiveTelemetry::get().drift.observe(static_cast<std::uint64_t>(drift));

  // The realized end is the SlotEnd's arrival tick (clamped to keep the
  // interval non-empty). Under the virtual clock arrival == nominal, so
  // the realized slot equals the engine's; over UDP the difference is
  // real-world timer drift, surfaced by the gauge above.
  Tick end = t;
  if (end <= st.slot_begin) end = st.slot_begin + 1;
  st.slot_close_end = end;
  st.awaiting_end = false;
  if (is_transmit(st.action)) channel_.close_tx(m.station, end);
  return true;
}

void Daemon::settle_slot(Tick t, StationId id, DaemonActions& out) {
  Mirror& st = mirror(id);
  // Engine step order: poll injections at the event, then feedback, then
  // delivery — an injector reacting to a delivery sees it only from the
  // next event on.
  poll_injections(t);
  const Feedback fb = channel_.feedback(st.slot_begin, st.slot_close_end);
  bool delivered = false;
  // Ownership check mirrors the engines: under a reject-mode restrained
  // channel the ack may belong to another station's transmission ending
  // inside this slot (ours never reached the medium).
  if (st.action == SlotAction::kTransmitPacket && fb == Feedback::kAck &&
      (!channel_.restrained().enabled() ||
       channel_.transmission_successful(id, st.slot_close_end))) {
    AM_CHECK_MSG(!st.queue.empty(), "delivery with empty mirror queue");
    const sim::Packet p = st.queue.front();
    st.queue.pop_front();
    st.queue_cost -= p.cost;
    delivered = true;
    last_successful_ = id;
    metrics_.on_delivery(id, p.cost, p.injected_at,
                         st.slot_close_end - st.slot_begin, t);
  }
  metrics_.on_slot_end(id, st.action);
  if (cfg_.spec.energy_enabled) {
    // Post-delivery mirror queue state — the engines' exact billing rule.
    if (is_transmit(st.action))
      meter_.add_transmit(id);
    else
      meter_.add_idle(id, st.queue.empty());
  }
  if (cfg_.spec.record_trace)
    trace_.record({id, st.slot_index, st.slot_begin, st.slot_close_end,
                   st.action, fb});

  Msg reply;
  reply.type = MsgType::kFeedback;
  reply.slot_index = st.slot_index;
  reply.feedback = fb;
  reply.delivered = delivered;
  reply.injections = std::move(st.pending);
  st.pending.clear();
  send(id, reply, out);

  ++settled_since_prune_;
}

void Daemon::handle_boundary(Tick t, const Msg& m, DaemonActions& out) {
  Mirror& st = mirror(m.station);
  if (!started_ || !st.joined || st.finned) {
    resend_cached(m.station, out);
    return;
  }
  if (m.slot_index == st.slot_index && st.awaiting_end) {
    // Grant lost; the station re-announced the same slot.
    resend_cached(m.station, out);
    return;
  }
  if (m.slot_index != st.slot_index + 1 || st.awaiting_end) {
    LiveTelemetry::get().late.add();
    return;
  }

  if (m.action == SlotAction::kTransmitPacket && st.queue.empty()) {
    fail_run("station " + std::to_string(m.station) +
                 " transmits with empty queue",
             out);
    return;
  }
  if (m.action == SlotAction::kTransmitControl && !cfg_.spec.allow_control) {
    fail_run("control message in a no-control model (station " +
                 std::to_string(m.station) + ")",
             out);
    return;
  }

  st.slot_index = m.slot_index;
  st.slot_begin = t;
  st.action = m.action;
  const Tick len =
      policy_->slot_length(m.station, st.slot_index, st.slot_begin, st.action);
  AM_CHECK_MSG(len >= kTicksPerUnit && len <= max_slot_ticks_,
               "slot policy returned length " << len << " outside [1, R]");
  st.slot_end_granted = st.slot_begin + len;
  st.awaiting_end = true;

  if (is_transmit(st.action)) {
    channel_.begin_tx(m.station, st.slot_begin,
                      st.action == SlotAction::kTransmitControl,
                      st.action == SlotAction::kTransmitControl
                          ? 0
                          : st.queue.front().seq);
  }

  Msg reply;
  reply.type = MsgType::kGrant;
  reply.slot_index = st.slot_index;
  reply.length = len;
  send(m.station, reply, out);
}

void Daemon::fin_station(StationId id, bool ok, const std::string& why,
                         DaemonActions& out) {
  Mirror& st = mirror(id);
  if (st.finned) return;
  st.finned = true;
  ++finned_;
  Msg fin;
  fin.type = MsgType::kFin;
  fin.ok = ok;
  fin.name = why;
  send(id, fin, out);
}

void Daemon::fail_run(const std::string& why, DaemonActions& out) {
  failed_ = true;
  reason_ = why;
  for (StationId id = 1; id <= n_; ++id)
    fin_station(id, /*ok=*/false, why, out);
}

void Daemon::maybe_prune() {
  if (settled_since_prune_ < cfg_.spec.prune_interval) return;
  settled_since_prune_ = 0;
  Tick horizon = kTickInfinity;
  for (const Mirror& m : mirrors_) horizon = std::min(horizon, m.slot_begin);
  channel_.prune_before(horizon);
}

void Daemon::check_done(DaemonActions& out) {
  if (done_ || finned_ < n_) return;
  done_ = true;
  out.done = true;
  // Backlog is constant after the last settled event; fill the remaining
  // chunk boundaries so the verdict sees the full series.
  while (next_sample_ <= cfg_.chunks) {
    samples_.push_back(metrics_.queued_cost());
    ++next_sample_;
  }
}

DaemonActions Daemon::on_batch(
    Tick now, const std::vector<std::vector<std::uint8_t>>& datagrams) {
  AM_CHECK_MSG(now >= now_, "wave times must not decrease");
  now_ = now;
  DaemonActions out;
  if (done_) {
    // The run is settled, but a station whose Fin datagram was lost keeps
    // retransmitting its last request until it gives up: stay idempotent
    // and re-serve the cached Fin so late stations still exit cleanly.
    out.done = true;
    for (const auto& bytes : datagrams) {
      Msg m;
      try {
        m = decode(bytes);
      } catch (const snapshot::SnapshotError&) {
        LiveTelemetry::get().decode_errors.add();
        continue;
      }
      LiveTelemetry::get().rx.add();
      if (m.station >= 1 && m.station <= n_) resend_cached(m.station, out);
    }
    return out;
  }

  record_samples_before(now);

  // Decode, validate addressing, split by type. Malformed or misdirected
  // datagrams are dropped (and counted); the daemon keeps serving.
  std::vector<Msg> joins, ends, boundaries;
  for (const auto& bytes : datagrams) {
    Msg m;
    try {
      m = decode(bytes);
    } catch (const snapshot::SnapshotError&) {
      LiveTelemetry::get().decode_errors.add();
      continue;
    }
    LiveTelemetry::get().rx.add();
    if (m.type != MsgType::kJoin && m.type != MsgType::kSlotEnd &&
        m.type != MsgType::kBoundary) {
      LiveTelemetry::get().late.add();  // not a station->daemon type
      continue;
    }
    if (m.station < 1 || m.station > n_) {
      LiveTelemetry::get().decode_errors.add();
      continue;
    }
    switch (m.type) {
      case MsgType::kJoin: joins.push_back(std::move(m)); break;
      case MsgType::kSlotEnd: ends.push_back(std::move(m)); break;
      default: boundaries.push_back(std::move(m)); break;
    }
  }

  // Every phase walks its messages in ascending station order, matching
  // the engine's (end, station) event-heap tie-break.
  auto by_station = [](const Msg& a, const Msg& b) {
    return a.station < b.station;
  };
  std::stable_sort(joins.begin(), joins.end(), by_station);
  std::stable_sort(ends.begin(), ends.end(), by_station);
  std::stable_sort(boundaries.begin(), boundaries.end(), by_station);

  for (const Msg& m : joins) handle_join(now, m, out);

  // Phase A: close every ending transmission interval before any
  // feedback query — a query at t must see all ends <= t decided.
  std::vector<StationId> settling;
  for (const Msg& m : ends) {
    if (done_) break;
    if (accept_slot_end(now, m, out)) settling.push_back(m.station);
  }
  // Phase B: settle the ended slots.
  for (StationId id : settling) {
    if (done_) break;
    settle_slot(now, id, out);
  }
  // Phase C: commit the announced next slots.
  for (const Msg& m : boundaries) {
    if (done_ || failed_) break;
    handle_boundary(now, m, out);
  }

  maybe_prune();
  check_done(out);
  return out;
}

}  // namespace asyncmac::live
