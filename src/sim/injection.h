// asyncmac/sim/injection.h
//
// Packet-injection adversaries (the leaky-bucket adversary with cost of
// Def. 1 and friends). Adaptive adversaries — e.g. the Theorem-5 rate-1
// adversary that chases whichever station is currently draining — observe
// the execution through EngineView, a read-only window the engine exposes.
#pragma once

#include <string>
#include <vector>

#include "channel/ledger.h"
#include "snapshot/fwd.h"
#include "util/types.h"

namespace asyncmac::sim {

struct Injection {
  Tick time = 0;
  StationId station = kInvalidStation;
  /// Declared Def.-1 cost (duration of the slot that will carry the
  /// packet). Charged against the adversary's leaky bucket.
  Tick cost = kTicksPerUnit;
};

/// Read-only view of the running execution for adaptive adversaries.
class EngineView {
 public:
  virtual ~EngineView() = default;
  virtual Tick now() const = 0;
  virtual std::uint32_t n() const = 0;
  virtual std::uint32_t bound_r() const = 0;
  virtual std::size_t queue_size(StationId station) const = 0;
  virtual Tick queue_cost(StationId station) const = 0;
  virtual const channel::LedgerStats& channel_stats() const = 0;
  /// Station whose successful packet transmission ended most recently
  /// (kInvalidStation if none yet).
  virtual StationId last_successful_station() const = 0;
  /// Fixed slot length of a station in ticks, when the slot policy is
  /// per-station constant; 0 for variable policies. Lets injection
  /// adversaries charge exact Def.-1 costs.
  virtual Tick fixed_slot_length(StationId station) const = 0;
};

class InjectionPolicy {
 public:
  virtual ~InjectionPolicy() = default;

  /// Called by the engine when simulated time advances to `now` (subject
  /// to the next_arrival_hint contract below). Append all injections with
  /// time <= now; times must be non-decreasing across the whole run. The
  /// engine pushes the packets onto station queues before processing the
  /// slot boundary at `now`, matching the paper's convention that a packet
  /// injected "at the end of slot j" is available to the protocol's
  /// decision for slot j+1.
  virtual void poll(Tick now, const EngineView& view,
                    std::vector<Injection>& out) = 0;

  /// Skip-ahead contract. Called by the engine immediately after poll()
  /// returns at time `now`; the returned hint H licenses the engine to
  /// SKIP every poll at times strictly before H and poll again only at
  /// the first event time >= H. A policy must therefore guarantee that a
  /// poll at any time t in [now, H) would (a) append no injections and
  /// (b) leave the policy in a state indistinguishable — for all future
  /// polls — from not having been called at all (token-bucket accrual
  /// qualifies: advancing to t and then to t' equals advancing straight
  /// to t', cap included). Under-promising is always safe: returning
  /// `now` reproduces the pre-hint poll-on-every-event behaviour exactly,
  /// and is the default so existing policies are unaffected. Return
  /// kTickInfinity when no future poll can ever inject.
  virtual Tick next_arrival_hint(Tick now) { return now; }

  virtual std::string name() const = 0;

  /// Checkpoint/resume: serialize mutable adversary state (token buckets,
  /// target cursors, RNG streams, script positions). The defaults are
  /// correct only for stateless policies; every bucket-based injector
  /// must override both.
  virtual void save_state(snapshot::Writer& w) const { (void)w; }
  virtual void load_state(snapshot::Reader& r) { (void)r; }
};

}  // namespace asyncmac::sim
