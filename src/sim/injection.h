// asyncmac/sim/injection.h
//
// Packet-injection adversaries (the leaky-bucket adversary with cost of
// Def. 1 and friends). Adaptive adversaries — e.g. the Theorem-5 rate-1
// adversary that chases whichever station is currently draining — observe
// the execution through EngineView, a read-only window the engine exposes.
#pragma once

#include <string>
#include <vector>

#include "channel/ledger.h"
#include "util/types.h"

namespace asyncmac::sim {

struct Injection {
  Tick time = 0;
  StationId station = kInvalidStation;
  /// Declared Def.-1 cost (duration of the slot that will carry the
  /// packet). Charged against the adversary's leaky bucket.
  Tick cost = kTicksPerUnit;
};

/// Read-only view of the running execution for adaptive adversaries.
class EngineView {
 public:
  virtual ~EngineView() = default;
  virtual Tick now() const = 0;
  virtual std::uint32_t n() const = 0;
  virtual std::uint32_t bound_r() const = 0;
  virtual std::size_t queue_size(StationId station) const = 0;
  virtual Tick queue_cost(StationId station) const = 0;
  virtual const channel::LedgerStats& channel_stats() const = 0;
  /// Station whose successful packet transmission ended most recently
  /// (kInvalidStation if none yet).
  virtual StationId last_successful_station() const = 0;
  /// Fixed slot length of a station in ticks, when the slot policy is
  /// per-station constant; 0 for variable policies. Lets injection
  /// adversaries charge exact Def.-1 costs.
  virtual Tick fixed_slot_length(StationId station) const = 0;
};

class InjectionPolicy {
 public:
  virtual ~InjectionPolicy() = default;

  /// Called by the engine every time simulated time advances to `now`.
  /// Append all injections with time <= now; times must be non-decreasing
  /// across the whole run. The engine pushes the packets onto station
  /// queues before processing the slot boundary at `now`, matching the
  /// paper's convention that a packet injected "at the end of slot j" is
  /// available to the protocol's decision for slot j+1.
  virtual void poll(Tick now, const EngineView& view,
                    std::vector<Injection>& out) = 0;

  virtual std::string name() const = 0;
};

}  // namespace asyncmac::sim
