// asyncmac/sim/event_heap.h
//
// Indexed, array-backed min-heap of slot-end events, keyed by station.
//
// The engine's event set has a structural invariant the generic
// std::priority_queue cannot exploit: exactly one slot-end event is ever
// pending per station — a station always has exactly one committed slot,
// whose end is replaced (never removed) when the slot is processed. The
// heap therefore holds a fixed n entries for the whole run: update()
// re-keys a station's single entry and sifts it in place, so the hot loop
// does no push/pop churn and no container growth.
//
// Ordering is (end tick, station id) lexicographic — identical to the
// previous std::priority_queue<std::pair<Tick, StationId>, ...,
// std::greater<>> scheduler, which makes the event processing order (and
// with it every trace byte) bit-for-bit identical. Simultaneous slot ends
// are processed in ascending station order; no two entries compare equal
// because station ids are unique.
//
// Layout choices, each measured on the slots/sec bench
// (docs/PERFORMANCE.md):
//  * A node is ONE unsigned __int128: (end << 32) | station. End ticks
//    are non-negative and station ids fit 32 bits, so lexicographic
//    (end, station) order coincides with plain integer order — one
//    branch-predictable comparison instead of a two-level tie-break whose
//    station branch mispredicts on the all-ties synchronous schedules.
//  * The heap is 4-ary: half the dependent levels of a binary heap, and
//    the four children of a node sit in 64 contiguous bytes.
//  * update() sinks bottom-up (Wegener's heapsort trick): walk the
//    min-child path to a leaf without testing the moving node — in the
//    hot case (the minimum re-keyed to a later end) it belongs near the
//    bottom anyway — then climb to the true position, usually one
//    comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace asyncmac::sim {

class SlotEventHeap {
 public:
  /// All stations start with key kTickInfinity ("no slot committed yet");
  /// the identity layout is a valid heap for equal keys under the
  /// station-id tie-break.
  explicit SlotEventHeap(std::uint32_t n) : heap_(n), pos_(n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      heap_[i] = make(kTickInfinity, static_cast<StationId>(i + 1));
      pos_[i] = i;
    }
  }

  std::size_t size() const noexcept { return heap_.size(); }
  bool empty() const noexcept { return heap_.empty(); }

  /// Earliest pending (end, station) under the lexicographic order.
  Tick top_time() const noexcept { return time_part(heap_[0]); }
  StationId top_station() const noexcept { return station_part(heap_[0]); }

  /// Current key of a station's single entry.
  Tick time_of(StationId station) const noexcept {
    return time_part(heap_[pos_[station - 1]]);
  }

  /// Re-key `station`'s entry to `end` and restore the heap invariant by
  /// sifting the one displaced entry. O(log n), no allocation.
  void update(StationId station, Tick end) noexcept {
    std::size_t i = pos_[station - 1];
    const Node moving = make(end, station);
    if (i > 0 && moving < heap_[(i - 1) >> 2]) {
      climb(i, moving);
      return;
    }
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 4 * i + 1;
      if (child >= n) break;
      const std::size_t lim = child + 4 < n ? child + 4 : n;
      std::size_t m = child;
      for (std::size_t j = child + 1; j < lim; ++j)
        if (heap_[j] < heap_[m]) m = j;
      place(i, heap_[m]);
      i = m;
    }
    climb(i, moving);
  }

 private:
  /// (end << 32) | station. End ticks are engine times (>= 0, with
  /// kTickInfinity = INT64_MAX as the "no event" sentinel), so the packed
  /// integer order is exactly the (end, station) lexicographic order.
  using Node = unsigned __int128;

  static Node make(Tick end, StationId station) noexcept {
    return (static_cast<Node>(static_cast<std::uint64_t>(end)) << 32) |
           station;
  }
  static Tick time_part(Node n) noexcept {
    return static_cast<Tick>(static_cast<std::uint64_t>(n >> 32));
  }
  static StationId station_part(Node n) noexcept {
    return static_cast<StationId>(n);
  }

  void place(std::size_t i, Node n) noexcept {
    heap_[i] = n;
    pos_[station_part(n) - 1] = static_cast<std::uint32_t>(i);
  }

  /// Sift `moving` up from position i to its true position.
  void climb(std::size_t i, Node moving) noexcept {
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!(moving < heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, moving);
  }

  std::vector<Node> heap_;        ///< heap order -> packed (end, station)
  std::vector<std::uint32_t> pos_;  ///< station id - 1 -> index in heap_
};

}  // namespace asyncmac::sim
