// asyncmac/sim/packet.h
#pragma once

#include "util/types.h"

namespace asyncmac::sim {

/// A dynamically injected packet (PT problem, Section II). `cost` is the
/// Def.-1 cost the injection adversary charges against its leaky bucket:
/// the duration of the slot that will eventually carry the packet. For
/// per-station-fixed slot policies this is exact; for variable policies the
/// adversary declares a bound and the BucketValidator checks realizations.
struct Packet {
  PacketSeq seq = 0;
  StationId station = kInvalidStation;
  Tick injected_at = 0;
  Tick cost = kTicksPerUnit;
};

}  // namespace asyncmac::sim
