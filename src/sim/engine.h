// asyncmac/sim/engine.h
//
// Discrete-event executor of the partially asynchronous MAC model.
//
// The engine owns: one StationContext + Protocol per station, the channel
// transmission Ledger, the adversarial SlotPolicy and InjectionPolicy, a
// metrics Collector and an optional trace Recorder. It advances slot-end
// events in (time, station-id) order, which makes every run bit-for-bit
// deterministic for a fixed configuration and seed.
//
// Hot-loop structure (see docs/PERFORMANCE.md for measurements):
//  * Exactly n slot-end events are ever pending — one per station, since
//    a station always has exactly one committed slot. The scheduler is
//    therefore an indexed array-backed min-heap (sim/event_heap.h) whose
//    entries are re-keyed in place: begin_slot sifts the station's single
//    entry instead of push/pop churn on a priority queue. The (end,
//    station) order is identical to the previous std::priority_queue
//    scheduler, so traces are byte-for-byte unchanged.
//  * Injection polling skips ahead: after each poll the InjectionPolicy
//    returns a next_arrival_hint, and polls strictly before the hint are
//    skipped entirely (the hint contract in sim/injection.h makes this
//    exact, not approximate). Workloads with sparse arrivals no longer
//    pay a virtual poll on every slot end.
//  * Per-step telemetry is accumulated in plain counters and flushed to
//    the atomic instruments at prune cadence / run end / destruction, so
//    the innermost path performs no atomic operations for telemetry.
//
// Correctness notes (why event order gives exact channel semantics):
//  * A transmission is registered at its slot's *start*, i.e. when the
//    preceding slot-end event of the same station is processed; since
//    events are processed in non-decreasing time order, the ledger sees
//    begins in non-decreasing order.
//  * Feedback for a slot ending at time t depends only on transmissions
//    with begin < t (intervals are half-open), all of which are already in
//    the ledger when the event at t is handled — including ties at t,
//    because a transmission beginning exactly at t cannot overlap [.., t).
//  * Success of a transmission ending at time e <= t cannot be affected by
//    transmissions that begin at time >= t, so lazy finalization is exact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "channel/ledger.h"
#include "energy/meter.h"
#include "metrics/collector.h"
#include "sim/event_heap.h"
#include "sim/injection.h"
#include "sim/protocol.h"
#include "sim/slot_policy.h"
#include "sim/station.h"
#include "trace/recorder.h"
#include "util/types.h"

namespace asyncmac::sim {

struct EngineConfig {
  std::uint32_t n = 0;        ///< number of stations (IDs 1..n)
  std::uint32_t bound_r = 1;  ///< the known asynchrony bound R >= 1
  std::uint64_t seed = 1;     ///< master seed (per-station RNGs derive)
  bool keep_channel_history = false;  ///< retain all transmissions
  bool record_trace = false;          ///< record per-slot trace
  bool record_deliveries = false;     ///< keep a delivery log (validator)
  /// When false, a kTransmitControl action is a protocol bug (model rows
  /// of Table I that forbid control messages).
  bool allow_control = true;
  /// Slot-end events between ledger prunes (and batched-telemetry
  /// flushes). Must be >= 1. The default balances prune work against live
  /// window growth; bench_engine sweeps it (see docs/PERFORMANCE.md).
  std::uint64_t prune_interval = 4096;
  /// Initial capacity reserved for the delivery log when
  /// record_deliveries is set. The log grows unbounded with deliveries —
  /// long validator runs should bound StopCondition::max_total_slots (or
  /// max_time) rather than rely on the reserve.
  std::size_t delivery_reserve_hint = 1024;
  /// Autosave cadence in processed slot-end events (0 = off). The engine
  /// never touches the filesystem itself: every checkpoint_interval steps
  /// it invokes checkpoint_sink with *this, and the sink (e.g.
  /// snapshot::AutoSaver) serializes and persists. The counter is part of
  /// the snapshot, so a resumed run autosaves on the same slot boundaries
  /// as an uninterrupted one.
  std::uint64_t checkpoint_interval = 0;
  std::function<void(const class Engine&)> checkpoint_sink;
  /// k-restrained channel (channel/transmission.h, arXiv 1808.02216): at
  /// most `restrained.k` overlapping transmissions are admitted on air;
  /// excess ones are jammed or rejected. k == 0 keeps the classic
  /// unrestrained channel and bypasses all admission machinery.
  channel::RestrainedSpec restrained;
  /// Per-station energy accounting (energy/model.h, docs/ENERGY.md).
  /// Observation-only: enabling it changes no simulation byte — stats,
  /// trace, feedback and snapshots (minus the gated energy tail) are
  /// identical with it on or off.
  energy::EnergyModel energy;
};

struct StopCondition {
  Tick max_time = kTickInfinity;  ///< stop before events beyond this time
  std::uint64_t max_total_slots = UINT64_MAX;
  /// Optional extra predicate, evaluated after every processed slot end.
  std::function<bool(const class Engine&)> predicate;
};

/// Convenience: a StopCondition that only bounds simulated time.
inline StopCondition until(Tick max_time) {
  StopCondition s;
  s.max_time = max_time;
  return s;
}

/// Realized outcome of one delivered packet (for bucket validation and
/// latency studies).
struct DeliveryRecord {
  PacketSeq seq = 0;
  StationId station = kInvalidStation;
  Tick injected_at = 0;
  Tick declared_cost = 0;
  Tick realized_cost = 0;  ///< actual duration of the delivering slot
  Tick delivered_at = 0;   ///< end time of the delivering slot
};

class Engine final : public EngineView {
 public:
  /// `protocols` must have exactly cfg.n entries (index i drives station
  /// i+1). `injection` may be null for workloads without packet arrivals
  /// (e.g. SST runs where participation is encoded in the protocols).
  Engine(EngineConfig cfg, std::vector<std::unique_ptr<Protocol>> protocols,
         std::unique_ptr<SlotPolicy> slot_policy,
         std::unique_ptr<InjectionPolicy> injection);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Advance the simulation until the stop condition triggers. May be
  /// called repeatedly; state persists across calls.
  void run(const StopCondition& stop);

  /// Process exactly one slot-end event; returns false when the event
  /// queue is empty (cannot happen in normal configurations).
  bool step();

  // ---- EngineView (read-only window for adaptive adversaries) ----
  Tick now() const override { return now_; }
  std::uint32_t n() const override { return cfg_.n; }
  std::uint32_t bound_r() const override { return cfg_.bound_r; }
  std::size_t queue_size(StationId station) const override;
  Tick queue_cost(StationId station) const override;
  const channel::LedgerStats& channel_stats() const override;
  StationId last_successful_station() const override {
    return last_successful_;
  }
  Tick fixed_slot_length(StationId station) const override;

  // ---- Inspection ----
  const metrics::RunStats& stats() const { return metrics_.stats(); }
  const channel::Ledger& ledger() const { return ledger_; }
  const trace::Recorder& trace() const { return trace_; }
  const Protocol& protocol(StationId station) const;
  Protocol& protocol_mut(StationId station);
  const StationContext& context(StationId station) const;
  std::uint64_t station_slots(StationId station) const;
  /// Per-station energy slot counts (all zero unless cfg.energy.enabled).
  const energy::EnergyMeter& energy_meter() const { return meter_; }
  const energy::EnergyModel& energy_model() const { return cfg_.energy; }
  const std::vector<DeliveryRecord>& deliveries() const { return deliveries_; }
  /// True when every protocol reports finished() (one-shot tasks).
  bool all_finished() const;

  // ---- Checkpoint/resume ----
  /// Serialize the complete mutable simulation state: station queues,
  /// RNG streams, protocol state, committed slots, ledger (window and
  /// archive), metrics, trace, delivery log, adversary state and the
  /// engine's own cursors. Configuration (EngineConfig, protocol choice,
  /// policy construction parameters) is NOT included — restoring requires
  /// an Engine built from the identical configuration, whose load_state
  /// then overwrites every mutable field. After load_state the engine
  /// continues bit-for-bit as the saved run would have (telemetry
  /// counters excepted; they are process-global and out of contract).
  void save_state(snapshot::Writer& w) const;
  /// Throws snapshot::SnapshotError (kMismatch) when the payload was
  /// saved under a different n / R / recording configuration, and
  /// (kCorrupt) on enum bytes or invariants no writer produces.
  void load_state(snapshot::Reader& r);
  /// (Re-)install the autosave sink after construction — a resumed engine
  /// is built by a factory that cannot capture the caller's saver. Only
  /// fires when checkpoint_interval was configured.
  void set_checkpoint_sink(std::function<void(const Engine&)> sink) {
    cfg_.checkpoint_sink = std::move(sink);
  }

 private:
  struct StationRuntime {
    StationContext ctx;
    std::unique_ptr<Protocol> protocol;
    SlotIndex slot_index = 0;  // 1-based; 0 = before first slot
    Tick slot_begin = 0;
    Tick slot_end = 0;
    SlotAction action = SlotAction::kListen;

    StationRuntime(StationId id, std::uint32_t n, std::uint32_t r,
                   std::uint64_t seed, std::unique_ptr<Protocol> p)
        : ctx(id, n, r, seed), protocol(std::move(p)) {}
  };

  void poll_injections(Tick now);
  void begin_slot(StationRuntime& rt, Tick begin, SlotAction action);
  void maybe_prune();
  /// Push the batched per-step telemetry deltas into the global atomic
  /// instruments. Called on the cold path only (prune cadence, run()
  /// exit, destruction); between flushes the global counters lag by at
  /// most prune_interval slots.
  void flush_telemetry();
  StationRuntime& rt(StationId id);
  const StationRuntime& rt(StationId id) const;

  EngineConfig cfg_;
  std::vector<StationRuntime> stations_;
  std::unique_ptr<SlotPolicy> slot_policy_;
  std::unique_ptr<InjectionPolicy> injection_;
  channel::Ledger ledger_;
  metrics::Collector metrics_;
  energy::EnergyMeter meter_;
  trace::Recorder trace_;
  std::vector<DeliveryRecord> deliveries_;

  /// One pending slot-end event per station, re-keyed in place.
  SlotEventHeap events_;

  Tick now_ = 0;
  /// bound_r * kTicksPerUnit, hoisted out of the per-slot length checks.
  Tick max_slot_ticks_ = 0;
  /// Earliest time the next injection poll may be needed (the standing
  /// next_arrival_hint); events strictly before it skip poll_injections.
  Tick next_injection_poll_ = 0;
  Tick last_injection_time_ = 0;
  PacketSeq next_seq_ = 1;
  StationId last_successful_ = kInvalidStation;
  std::uint64_t steps_since_prune_ = 0;
  std::uint64_t steps_since_checkpoint_ = 0;
  std::vector<Injection> injection_buffer_;

  // Batched telemetry deltas (plain integers on the hot path; see
  // flush_telemetry).
  std::uint64_t pending_slots_ = 0;
  std::uint64_t pending_deliveries_ = 0;
  std::uint64_t pending_injections_ = 0;
  std::uint64_t pending_polls_skipped_ = 0;
};

}  // namespace asyncmac::sim
