// asyncmac/sim/slot_policy.h
//
// The adversarial scheduler of slot lengths (Section II): each station's
// partition of time into slots is chosen online by an adversary, subject
// only to every length lying in [1, R] time units. Concrete policies live
// in src/adversary/; this interface is all the engine needs.
#pragma once

#include <string>

#include "snapshot/fwd.h"
#include "util/types.h"

namespace asyncmac::sim {

class SlotPolicy {
 public:
  virtual ~SlotPolicy() = default;

  /// Length in ticks of station `station`'s slot with 1-based index
  /// `index`, which begins at absolute tick `begin` and in which the
  /// station will perform `action` (the online adversary observes
  /// everything, including the action committed for the upcoming slot).
  /// Must return a value in [kTicksPerUnit, R * kTicksPerUnit].
  virtual Tick slot_length(StationId station, SlotIndex index, Tick begin,
                           SlotAction action) = 0;

  virtual std::string name() const = 0;

  /// If this policy always gives `station` the same slot length, return it
  /// (in ticks); otherwise return 0. Injection adversaries use this to
  /// charge exact Def.-1 costs; it is advisory and never affects the
  /// simulation itself.
  virtual Tick fixed_length(StationId station) const {
    (void)station;
    return 0;
  }

  /// Checkpoint/resume: serialize mutable scheduler state. The defaults
  /// are correct only for stateless (configuration-only) policies;
  /// stateful ones (e.g. the seeded random policy) must override both.
  virtual void save_state(snapshot::Writer& w) const { (void)w; }
  virtual void load_state(snapshot::Reader& r) { (void)r; }
};

}  // namespace asyncmac::sim
