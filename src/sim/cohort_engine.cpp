#include "sim/cohort_engine.h"

#include <algorithm>

#include "channel/lane_ledger.h"
#include "snapshot/io.h"
#include "snapshot/state.h"
#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::sim {

namespace {

// Write-only telemetry instruments (docs/OBSERVABILITY.md), batched like
// the scalar engine's: plain counters on the hot path, flushed at prune
// cadence / run() exit / destruction. "engine.*" names are shared with
// the scalar Engine (the registry resolves by name), so a lockstep lane
// contributes to the same instruments its scalar twin would.
struct CohortTelemetry {
  telemetry::Counter& batches =
      telemetry::Registry::global().counter("cohort.batches");
  telemetry::Counter& detaches =
      telemetry::Registry::global().counter("cohort.detaches");
  telemetry::Counter& lanes_retired =
      telemetry::Registry::global().counter("cohort.lanes_retired");
  telemetry::Counter& engine_slots =
      telemetry::Registry::global().counter("engine.slots");
  telemetry::Counter& engine_injections =
      telemetry::Registry::global().counter("engine.injections");
  telemetry::Counter& engine_deliveries =
      telemetry::Registry::global().counter("engine.deliveries");
  telemetry::Counter& engine_prunes =
      telemetry::Registry::global().counter("engine.prunes");
  telemetry::Counter& engine_polls_skipped =
      telemetry::Registry::global().counter("engine.injection_polls_skipped");
  telemetry::Counter& ca_arrow_turns =
      telemetry::Registry::global().counter("core.ca_arrow.turns");

  static CohortTelemetry& get() {
    static CohortTelemetry t;
    return t;
  }
};

// The lane-ized automaton. The cohort identifies it by Protocol::name()
// (no link-time dependency on core), and the state bytes below are the
// exact CaArrowProtocol::save_state layout — core/ca_arrow.cpp carries
// the matching KEEP IN SYNC note.
constexpr const char* kLaneizedProtocol = "CA-ARRoW";

// core::CaArrowProtocol::State values, pinned by its save_state u8.
constexpr std::uint8_t kCaInit = 0;
constexpr std::uint8_t kCaCountdown = 1;
constexpr std::uint8_t kCaDrain = 2;
constexpr std::uint8_t kCaNoise = 3;
constexpr std::uint8_t kCaAwaitSequenceEnd = 4;

}  // namespace

struct CohortEngine::Impl {
  // ---- shared across the cohort (meaningful when lockstep) ----
  bool lockstep = false;
  EngineConfig cfg;  ///< shared configuration facets (lane 0's; seeds vary)
  std::uint32_t K = 0;
  Tick max_slot_ticks = 0;
  std::vector<Tick> lengths;  ///< [station-1] fixed slot length, ticks

  // The shared schedule: fixed action-independent lengths make the
  // (end, station) event sequence identical across lanes, so one heap and
  // one per-station slot record drive every lane.
  SlotEventHeap events{1};
  std::vector<SlotIndex> slot_index;
  std::vector<Tick> slot_begin;
  std::vector<Tick> slot_end;
  Tick now = 0;
  std::uint64_t steps_since_prune = 0;

  /// All stations share one fixed slot length (the synchronous adversary).
  /// The heap's (end, station) lexicographic order then degenerates to a
  /// strict round-robin — every round all ends are equal, so ties resolve
  /// in ascending station order — and the scheduler becomes a counter:
  /// the heap (a measurable slice of the shared per-event cost at n=64)
  /// is bypassed entirely, yielding the exact same event sequence.
  bool uniform = false;
  StationId next_station = 1;

  // ---- per-(station, lane) protocol scalars, SoA ----
  // Index (station-1) * K + lane: station-major so the inner per-event
  // lane loop walks K contiguous entries.
  std::vector<std::uint8_t> ca_state;
  std::vector<std::uint32_t> ca_turn;
  std::vector<std::uint64_t> ca_countdown;
  std::vector<std::uint8_t> ca_heard;
  std::vector<std::uint64_t> ca_turns_taken;
  std::vector<SlotAction> action;
  /// 1 iff the (station, lane) queue is empty — a SoA mirror of
  /// StationContext::queue_empty(), maintained at the only two queue
  /// mutation sites (injection push, delivery pop) so the per-event lane
  /// loop never touches the scattered StationContext objects on the
  /// listen path (512 deque headers at n=64 x K=8 overflow L1).
  std::vector<std::uint8_t> q_empty;

  /// Shared-schedule snapshot frozen when a lane retires mid-run (the
  /// shared arrays keep advancing for the remaining lanes).
  struct Frozen {
    Tick now = 0;
    std::uint64_t steps_since_prune = 0;
    std::vector<SlotIndex> slot_index;
    std::vector<Tick> slot_begin;
    std::vector<Tick> slot_end;
  };

  struct Lane {
    explicit Lane(std::uint32_t n) : metrics(n), meter(n) {}

    LaneBuilder builder;
    // Live per-lane objects with the scalar engine's exact semantics.
    // The channel ledger lives lane-major in Impl::lane_ledger, not here.
    std::vector<StationContext> stations;
    std::unique_ptr<InjectionPolicy> injection;
    metrics::Collector metrics;
    /// Mirrors Engine::meter_; charged eagerly (energy runs are rare
    /// enough that the SoA fold machinery would buy nothing).
    energy::EnergyMeter meter;
    trace::Recorder trace;
    std::vector<DeliveryRecord> deliveries;
    // Engine cursors (per lane — mirror Engine's members).
    Tick next_injection_poll = 0;
    Tick last_injection_time = 0;
    PacketSeq next_seq = 1;
    StationId last_successful = kInvalidStation;
    // Batched telemetry deltas, flushed exactly when the scalar engine
    // would flush its own (prune cadence, lane stop, destruction) so the
    // serialized residue matches byte-for-byte.
    std::uint64_t pending_slots = 0;
    std::uint64_t pending_deliveries = 0;
    std::uint64_t pending_injections = 0;
    std::uint64_t pending_polls_skipped = 0;

    bool retired = false;
    std::unique_ptr<Frozen> frozen;  ///< set when retired
    std::unique_ptr<Engine> engine;  ///< set when detached / fallback
  };
  std::vector<std::unique_ptr<Lane>> lanes;
  /// Raw mirror of `lanes` for the per-event loops: one indirection
  /// instead of two (the unique_ptrs are stable after construction).
  std::vector<Lane*> lane_ptr;
  std::vector<std::uint32_t> active;  ///< lockstep lanes still advancing

  /// Lane-major SoA channel substrate (lockstep only; fallback lanes own
  /// scalar Engines with scalar Ledgers). One feedback_all call per event
  /// classifies all K lanes over contiguous arrays.
  std::unique_ptr<channel::LaneLedger> lane_ledger;
  std::vector<Feedback> fb_buffer;  ///< feedback_all output, indexed by lane
  bool any_injection = false;  ///< hoisted: phase 1 skips injector-free runs

  // ---- SoA batched RunStats slot counters (lockstep only) ----
  // Every active lane processes every event, so the per-lane total_slots
  // delta is one shared scalar; the action split and per-station transmit
  // counts stay per lane. flush_metrics() folds these into each lane's
  // real Collector before ANY RunStats observation (stats() accessor,
  // lane snapshot, stop-gate recompute, prune cadence), so readers see
  // exactly the values K scalar on_slot_end streams would have produced.
  // Unlike the engine.* telemetry pendings these are NOT serialized as
  // distinct fields — Collector state is observed whole — so flushing at
  // any observation point is free of byte-identity concerns.
  std::uint64_t pend_events = 0;                  ///< per-lane total_slots delta
  std::vector<std::uint64_t> pend_station_slots;  ///< [station-1], lane-shared
  std::vector<std::uint64_t> pend_listen;         ///< [lane]
  std::vector<std::uint64_t> pend_tx_packet;      ///< [lane]
  std::vector<std::uint64_t> pend_tx_control;     ///< [lane]
  std::vector<std::uint64_t> pend_station_tx;     ///< [(station-1)*K + lane]

  /// engine.slots telemetry delta shared across active lanes (one
  /// increment per event instead of K). Folded into a lane's own
  /// pending_slots exactly where the scalar engine flushes: prune cadence
  /// zeroes it after folding into every active lane; a retiring lane
  /// takes its share without zeroing (the remaining lanes still own it).
  std::uint64_t pend_slots_shared = 0;

  std::vector<Injection> injection_buffer;

  // Cohort-level batched telemetry.
  std::uint64_t pending_batches = 0;
  std::uint64_t pending_detaches = 0;
  std::uint64_t pending_lanes_retired = 0;
  std::uint64_t pending_turns = 0;  ///< core.ca_arrow.turns deltas

  /// Read-only window a lane exposes to its injection adversary —
  /// the lane-local equivalent of the scalar Engine's EngineView.
  struct LaneView final : EngineView {
    const Impl* impl;
    const Lane* lane;
    std::uint32_t k;
    LaneView(const Impl* i, const Lane* l, std::uint32_t lane_idx)
        : impl(i), lane(l), k(lane_idx) {}
    Tick now() const override { return impl->now; }
    std::uint32_t n() const override { return impl->cfg.n; }
    std::uint32_t bound_r() const override { return impl->cfg.bound_r; }
    std::size_t queue_size(StationId station) const override {
      return lane->stations[station - 1].queue_size();
    }
    Tick queue_cost(StationId station) const override {
      return lane->stations[station - 1].queue_cost();
    }
    const channel::LedgerStats& channel_stats() const override {
      return impl->lane_ledger->stats(k);
    }
    StationId last_successful_station() const override {
      return lane->last_successful;
    }
    Tick fixed_slot_length(StationId station) const override {
      return impl->lengths[station - 1];
    }
  };

  std::size_t idx(StationId station, std::uint32_t lane) const {
    return static_cast<std::size_t>(station - 1) * K + lane;
  }

  // ---- the lane-ized CA-ARRoW automaton (port of core/ca_arrow.cpp) ----
  // The automaton steps and the action commitment below are forced inline:
  // they run K times per event inside process_event's lane loop, and at
  // n=64/K=8 the plain call overhead alone is a measurable slice of the
  // per-slot budget (the optimizer declines to inline them on its own).

  [[gnu::always_inline]] inline void ca_advance_turn(std::size_t i) {
    ca_turn[i] = (ca_turn[i] % cfg.n) + 1;
  }

  [[gnu::always_inline]] inline SlotAction ca_begin_phase(std::size_t i,
                                                          StationId id) {
    if (ca_turn[i] == id) {
      ++ca_turns_taken[i];
      ++pending_turns;
      ca_countdown[i] = 2ULL * cfg.bound_r;
      ca_state[i] = kCaCountdown;
    } else {
      ca_heard[i] = 0;
      ca_state[i] = kCaAwaitSequenceEnd;
    }
    return SlotAction::kListen;
  }

  /// next_action(nullopt) — the pre-first-slot decision.
  SlotAction ca_first_action(std::size_t i, StationId id) {
    AM_CHECK(ca_state[i] == kCaInit);
    ca_turn[i] = 1;
    return ca_begin_phase(i, id);
  }

  /// next_action(prev) after a slot ended with feedback `fb`.
  [[gnu::always_inline]] inline SlotAction ca_next_action(std::size_t i,
                                                          StationId id,
                                                          Feedback fb,
                                                          bool queue_empty) {
    switch (ca_state[i]) {
      case kCaCountdown:
        if (--ca_countdown[i] > 0) return SlotAction::kListen;
        if (queue_empty) {
          ca_state[i] = kCaNoise;
          return SlotAction::kTransmitControl;
        }
        ca_state[i] = kCaDrain;
        return SlotAction::kTransmitPacket;

      case kCaNoise:
        ca_advance_turn(i);
        return ca_begin_phase(i, id);

      case kCaDrain:
        if (!queue_empty) return SlotAction::kTransmitPacket;
        ca_advance_turn(i);
        return ca_begin_phase(i, id);

      case kCaAwaitSequenceEnd:
        if (fb != Feedback::kSilence) {
          ca_heard[i] = 1;
          return SlotAction::kListen;
        }
        if (ca_heard[i]) {
          ca_advance_turn(i);
          return ca_begin_phase(i, id);
        }
        return SlotAction::kListen;

      default:
        AM_CHECK(false);  // kCaInit is unreachable after the first slot
        return SlotAction::kListen;
    }
  }

  // ---- per-lane ports of the scalar engine's step pieces ----

  void poll_lane(std::uint32_t k, Tick t) {
    Lane& L = *lane_ptr[k];
    if (!L.injection) return;
    injection_buffer.clear();
    const LaneView view(this, &L, k);
    L.injection->poll(t, view, injection_buffer);
    for (const Injection& inj : injection_buffer) {
      AM_CHECK_MSG(inj.time <= t, "injection in the future");
      AM_CHECK_MSG(inj.time >= L.last_injection_time,
                   "injection times must be non-decreasing");
      AM_CHECK(inj.station >= 1 && inj.station <= cfg.n);
      AM_CHECK_MSG(inj.cost >= kTicksPerUnit && inj.cost <= max_slot_ticks,
                   "packet cost must lie in [1, R] time units");
      L.last_injection_time = inj.time;
      Packet p;
      p.seq = L.next_seq++;
      p.station = inj.station;
      p.injected_at = inj.time;
      p.cost = inj.cost;
      L.stations[inj.station - 1].push(p);
      q_empty[idx(inj.station, k)] = 0;
      L.metrics.on_injection(inj.station, inj.cost, t);
    }
    L.pending_injections += injection_buffer.size();
  }

  /// The per-lane half of Engine::begin_slot: validity checks, the action
  /// commitment and the ledger registration. The shared half (slot index/
  /// bounds and the heap re-key) runs once per event for all lanes. The
  /// common listen commit touches only the SoA action array — the Lane
  /// object is dereferenced only on the transmit paths.
  [[gnu::always_inline]] inline void lane_commit_action(std::uint32_t k,
                                                        std::size_t i,
                                                        StationId id,
                                                        SlotAction a,
                                                        Tick begin, Tick end) {
    if (a == SlotAction::kTransmitPacket)
      AM_CHECK_MSG(!lane_ptr[k]->stations[id - 1].queue_empty(),
                   "station " << id << " transmits with empty queue");
    if (a == SlotAction::kTransmitControl)
      AM_CHECK_MSG(cfg.allow_control,
                   "control message in a no-control model (station " << id
                                                                     << ")");
    action[i] = a;
    if (is_transmit(a)) {
      channel::Transmission tx;
      tx.station = id;
      tx.begin = begin;
      tx.end = end;
      tx.is_control = (a == SlotAction::kTransmitControl);
      tx.packet =
          tx.is_control ? 0 : lane_ptr[k]->stations[id - 1].front().seq;
      lane_ledger->add(k, tx);
    }
  }

  /// Engine::flush_telemetry for one lane.
  void flush_lane(Lane& L) {
    if ((L.pending_slots | L.pending_deliveries | L.pending_injections |
         L.pending_polls_skipped) == 0)
      return;
    CohortTelemetry& t = CohortTelemetry::get();
    t.engine_slots.add(L.pending_slots);
    t.engine_deliveries.add(L.pending_deliveries);
    t.engine_injections.add(L.pending_injections);
    t.engine_polls_skipped.add(L.pending_polls_skipped);
    L.pending_slots = L.pending_deliveries = L.pending_injections =
        L.pending_polls_skipped = 0;
  }

  /// Fold the SoA slot counters into every active lane's Collector and
  /// zero them. Invariant: since the last zero, every currently-active
  /// lane processed exactly pend_events events (retire() folds before
  /// removing a lane from `active`), so the shared event count and the
  /// lane-shared per-station slot counts apply to each of them verbatim.
  void flush_metrics() {
    if (pend_events == 0) return;
    for (const std::uint32_t k : active) {
      Lane& L = *lane_ptr[k];
      L.metrics.on_slot_batch(pend_events, pend_listen[k], pend_tx_packet[k],
                              pend_tx_control[k]);
      for (std::uint32_t s = 0; s < cfg.n; ++s) {
        const std::size_t i = static_cast<std::size_t>(s) * K + k;
        if ((pend_station_slots[s] | pend_station_tx[i]) != 0)
          L.metrics.on_station_slot_batch(s + 1, pend_station_slots[s],
                                          pend_station_tx[i]);
      }
    }
    pend_events = 0;
    std::fill(pend_station_slots.begin(), pend_station_slots.end(), 0);
    std::fill(pend_listen.begin(), pend_listen.end(), 0);
    std::fill(pend_tx_packet.begin(), pend_tx_packet.end(), 0);
    std::fill(pend_tx_control.begin(), pend_tx_control.end(), 0);
    std::fill(pend_station_tx.begin(), pend_station_tx.end(), 0);
  }

  void flush_cohort_telemetry() {
    if ((pending_batches | pending_detaches | pending_lanes_retired |
         pending_turns) == 0)
      return;
    CohortTelemetry& t = CohortTelemetry::get();
    t.batches.add(pending_batches);
    t.detaches.add(pending_detaches);
    t.lanes_retired.add(pending_lanes_retired);
    t.ca_arrow_turns.add(pending_turns);
    pending_batches = pending_detaches = pending_lanes_retired =
        pending_turns = 0;
  }

  /// A lane's stop triggered (mirrors the scalar run() loop exiting):
  /// freeze its view of the shared schedule and flush its telemetry, just
  /// as Engine::run flushes on exit.
  void retire(std::uint32_t k) {
    Lane& L = *lanes[k];
    flush_metrics();  // k still active here: its slot counters land first
    auto fz = std::make_unique<Frozen>();
    fz->now = now;
    fz->steps_since_prune = steps_since_prune;
    fz->slot_index = slot_index;
    fz->slot_begin = slot_begin;
    fz->slot_end = slot_end;
    L.frozen = std::move(fz);
    L.retired = true;
    // Take this lane's share of the shared slot delta without zeroing it —
    // the remaining active lanes processed the same events and still own it.
    L.pending_slots += pend_slots_shared;
    flush_lane(L);
    lane_ledger->flush_telemetry(k);
    ++pending_lanes_retired;
    active.erase(std::find(active.begin(), active.end(), k));
  }

  /// One shared slot-end event, processed for every active lane — the
  /// lockstep mirror of Engine::step (same operations, same order, per
  /// lane; only the schedule bookkeeping is shared).
  /// Time of the next slot-end event without popping it.
  Tick peek_time() const {
    return uniform ? slot_end[next_station - 1] : events.top_time();
  }

  void process_event() {
    StationId id;
    Tick t;
    if (uniform) {
      id = next_station;
      t = slot_end[id - 1];
      next_station = next_station == cfg.n ? 1 : next_station + 1;
    } else {
      t = events.top_time();
      id = events.top_station();
    }
    now = t;
    const std::size_t si = id - 1;
    AM_CHECK(slot_end[si] == t);
    const Tick s_begin = slot_begin[si];
    const SlotIndex ended_index = slot_index[si];
    const Tick len = lengths[si];
    const Tick new_end = t + len;
    const std::size_t base = si * K;

    // Phase 1 — injection polls, per lane (hints differ across seeds).
    // Skipped outright for injector-free cohorts; lanes are independent,
    // so phasing across lanes cannot reorder any single lane's calls.
    if (any_injection) {
      for (const std::uint32_t k : active) {
        Lane& L = *lane_ptr[k];
        if (t >= L.next_injection_poll) {
          poll_lane(k, t);
          L.next_injection_poll = L.injection->next_arrival_hint(t);
        } else if (L.injection) {
          ++L.pending_polls_skipped;
        }
      }
    }

    // Phase 2 — feedback for all K lanes of this slot in one vectorized
    // classification pass over the LaneLedger's contiguous summary arrays.
    // Awaiting-station fast paths — the steady-state shapes on arrow
    // workloads. When every lane of this station sits in
    // kCaAwaitSequenceEnd with a listen committed and no lane is at its
    // sequence-end transition (silence after something heard), the full
    // phase 3 per lane reduces to vectorizable strips: no delivery is
    // possible (a listen never pops a queue), the automaton's only
    // effect is ca_heard |= (fb != silence), the commit re-stores the
    // same listen byte, and the only counter that moves is pend_listen.
    // Only the turn-holder's slots (countdown / noise / drain) and the
    // one-per-turn sequence-end slots fall through to the general loop —
    // ~1 station in n.
    //
    // Tier 1 (quiet rounds): the ledger's inline all-quiet gate plus an
    // await check with heard == 0 — feedback is silence by construction,
    // so the fb_buffer fill, the heard |= strip and the feedback_all
    // call are all skipped; the ledger's pass-0 counters are applied
    // directly. Tier 2 (busy rounds): full feedback_all, then the await
    // check against the actual feedback bytes.
    const bool dense = !cfg.record_trace && active.size() == K;
    bool idle = false;
    if (dense && lane_ledger->all_quiet(s_begin)) {
      std::uint32_t await = 1;
      for (std::uint32_t k = 0; k < K; ++k) {
        const std::size_t i = base + k;
        await &= static_cast<std::uint32_t>(ca_state[i] ==
                                            kCaAwaitSequenceEnd) &
                 static_cast<std::uint32_t>(action[i] == SlotAction::kListen) &
                 static_cast<std::uint32_t>(ca_heard[i] == 0);
      }
      if (await != 0) {
        lane_ledger->apply_all_quiet();
        for (std::uint32_t k = 0; k < K; ++k) ++pend_listen[k];
        if (cfg.energy.enabled)
          for (std::uint32_t k = 0; k < K; ++k)
            lane_ptr[k]->meter.add_idle(id, q_empty[base + k] != 0);
        idle = true;
      }
    }
    if (!idle) {
      lane_ledger->feedback_all(s_begin, t, active, fb_buffer.data());
      if (dense) {
        std::uint32_t await = 1;
        for (std::uint32_t k = 0; k < K; ++k) {
          const std::size_t i = base + k;
          const std::uint32_t heard_something = static_cast<std::uint32_t>(
              fb_buffer[k] != Feedback::kSilence);
          await &= static_cast<std::uint32_t>(ca_state[i] ==
                                              kCaAwaitSequenceEnd) &
                   static_cast<std::uint32_t>(action[i] ==
                                              SlotAction::kListen) &
                   (heard_something |
                    static_cast<std::uint32_t>(ca_heard[i] == 0));
        }
        if (await != 0) {
          for (std::uint32_t k = 0; k < K; ++k)
            ca_heard[base + k] |= static_cast<std::uint8_t>(
                fb_buffer[k] != Feedback::kSilence);
          for (std::uint32_t k = 0; k < K; ++k) ++pend_listen[k];
          if (cfg.energy.enabled)
            for (std::uint32_t k = 0; k < K; ++k)
              lane_ptr[k]->meter.add_idle(id, q_empty[base + k] != 0);
          idle = true;
        }
      }
    }

    // Phase 3 — slot end + next-slot commit per lane. The common listen
    // path touches only the SoA arrays (fb_buffer, action, q_empty, the
    // pend_* counters); the Lane object is dereferenced only on delivery,
    // trace and transmit commits.
    if (!idle) for (const std::uint32_t k : active) {
      const std::size_t i = base + k;
      const Feedback fb = fb_buffer[k];
      const SlotAction act = action[i];
      // Ownership check mirrors the scalar engine: under a reject-mode
      // restrained channel the ack may be another station's (a rejected
      // transmission never reached the medium and cannot mask it).
      if (act == SlotAction::kTransmitPacket && fb == Feedback::kAck &&
          (!cfg.restrained.enabled() ||
           lane_ledger->transmission_successful(k, id, t))) {
        Lane& L = *lane_ptr[k];
        StationContext& ctx = L.stations[si];
        const Packet p = ctx.pop_front();
        q_empty[i] = ctx.queue_empty() ? 1 : 0;
        L.last_successful = id;
        L.metrics.on_delivery(id, p.cost, p.injected_at, t - s_begin, t);
        if (cfg.record_deliveries)
          L.deliveries.push_back({p.seq, id, p.injected_at, p.cost,
                                  t - s_begin, t});
        ++L.pending_deliveries;
      }
      // SoA slot accounting (on_delivery stays eager above; the two
      // touch disjoint RunStats fields, so folding later is exact).
      pend_listen[k] += act == SlotAction::kListen;
      pend_tx_packet[k] += act == SlotAction::kTransmitPacket;
      pend_tx_control[k] += act == SlotAction::kTransmitControl;
      pend_station_tx[i] += is_transmit(act);
      if (cfg.energy.enabled) {
        // Post-delivery queue state, like the scalar engine's billing.
        if (is_transmit(act))
          lane_ptr[k]->meter.add_transmit(id);
        else
          lane_ptr[k]->meter.add_idle(id, q_empty[i] != 0);
      }
      if (cfg.record_trace)
        lane_ptr[k]->trace.record({id, ended_index, s_begin, t, act, fb});

      // (The lane-ized automaton ignores SlotResult::delivered.)
      const SlotAction next = ca_next_action(i, id, fb, q_empty[i] != 0);
      lane_commit_action(k, i, id, next, t, new_end);
    }
    ++pend_events;
    ++pend_station_slots[si];
    ++pend_slots_shared;

    // Shared schedule half of begin_slot, once for all lanes.
    ++slot_index[si];
    slot_begin[si] = t;
    slot_end[si] = new_end;
    if (!uniform) events.update(id, new_end);
    ++pending_batches;

    // Prune cadence — shared counter: every active lane has processed
    // exactly the events the counter counts, so it equals each lane's
    // scalar steps_since_prune_.
    if (++steps_since_prune >= cfg.prune_interval) do_prune();
  }

  /// The shared prune cadence body (reached from the scalar per-event
  /// path and from batched quiet runs, at exactly the event counts where
  /// every lane's scalar engine would prune).
  void do_prune() {
    steps_since_prune = 0;
    Tick horizon = kTickInfinity;
    for (std::uint32_t s = 0; s < cfg.n; ++s)
      horizon = std::min(horizon, slot_begin[s]);
    CohortTelemetry::get().engine_prunes.add(active.size());
    flush_metrics();
    for (const std::uint32_t k : active) {
      lane_ledger->prune_before(k, horizon);
      lane_ptr[k]->pending_slots += pend_slots_shared;
      flush_lane(*lane_ptr[k]);
    }
    pend_slots_shared = 0;
    flush_cohort_telemetry();
  }

  /// Batched quiet-run fast path for the uniform (synchronous) schedule.
  ///
  /// Within one uniform round every still-unprocessed station's event
  /// shares the same slot [s_begin, t): the round advances in ascending
  /// station order and nothing a listening station does moves the
  /// schedule. If additionally (a) every lane's channel is all-quiet for
  /// [s_begin, t) — silence feedback via the O(1) fast path, and a
  /// listen commit cannot change that, (b) no lane's injector poll is
  /// due at t (one check covers the whole run: t is constant), and (c)
  /// a consecutive range of stations from the round cursor holds every
  /// lane in kCaAwaitSequenceEnd + committed listen + nothing heard,
  /// then each of those events is the idle no-op of process_event's
  /// fast path, and m of them collapse to `+= m` strips over the SoA
  /// counters plus one unit-stride pass over the m per-station slot
  /// records. The await scan itself is a contiguous byte sweep: station
  /// si's K lanes live at [si*K, si*K + K) in ca_state / action /
  /// ca_heard, so consecutive stations form one flat range.
  ///
  /// Byte-identity: every touched quantity advances by exactly the sum
  /// of the per-event deltas process_event would have applied, and no
  /// observation point (stop gate, prune cadence, retire, snapshot) can
  /// fire mid-run — `stop_budget` caps the run at the next stop
  /// trigger and the prune cap lands the cadence on the exact event.
  ///
  /// Returns the number of events processed (0: caller must take the
  /// scalar path).
  std::uint64_t process_quiet_run(std::uint64_t stop_budget) {
    if (!uniform || cfg.record_trace || active.size() != K) return 0;
    const std::size_t si0 = next_station - 1;
    const Tick t = slot_end[si0];
    const Tick s_begin = slot_begin[si0];
    // Classify the round's channel for all lanes at once. Quiet: silence
    // in every lane via the O(1) fast path. Memo: every lane replays its
    // memoized feedback for this exact [s_begin, t) — the shape of a busy
    // uniform round after its first event paid the seek-and-scan. Either
    // way the per-lane feedback byte is a run constant: heard_mask[k] is
    // 1 iff lane k hears something (so its awaiting stations must latch
    // ca_heard).
    const bool quiet = lane_ledger->all_quiet(s_begin);
    if (!quiet && !lane_ledger->all_memo(s_begin, t)) return 0;
    if (any_injection) {
      for (const std::uint32_t k : active)
        if (t >= lane_ptr[k]->next_injection_poll) return 0;
    }
    std::uint64_t cap = cfg.n - si0;  // stations left in this round
    cap = std::min(cap, cfg.prune_interval - steps_since_prune);
    cap = std::min(cap, stop_budget);
    std::uint64_t m = 0;
    if (quiet) {
      // Quiet rounds batch awaiting stations through silence feedback
      // REGARDLESS of ca_heard: a lane that heard nothing idles, a lane
      // with ca_heard set is at its sequence end and advances the turn —
      // ca_advance_turn + ca_begin_phase as branchless per-lane selects
      // (every store writes the scalar path's exact value, which for
      // non-advancing lanes is the value already there). This covers the
      // round after every noise burst, where all n-1 awaiting stations
      // advance their local turn counters at once.
      const std::uint64_t fresh_countdown = 2ULL * cfg.bound_r;
      while (m < cap) {
        const std::size_t b = (si0 + m) * K;
        std::uint32_t ok = 1;
        for (std::uint32_t k = 0; k < K; ++k)
          ok &= static_cast<std::uint32_t>(ca_state[b + k] ==
                                           kCaAwaitSequenceEnd) &
                static_cast<std::uint32_t>(action[b + k] ==
                                           SlotAction::kListen);
        if (ok == 0) break;
        const std::uint32_t id = static_cast<std::uint32_t>(si0 + m + 1);
        std::uint64_t took = 0;
        for (std::uint32_t k = 0; k < K; ++k) {
          const std::uint32_t adv = ca_heard[b + k];  // 0 or 1
          const std::uint32_t turn = ca_turn[b + k];
          const std::uint32_t stepped = turn == cfg.n ? 1u : turn + 1u;
          const std::uint32_t new_turn = adv != 0 ? stepped : turn;
          const std::uint32_t my =
              adv & static_cast<std::uint32_t>(new_turn == id);
          ca_turn[b + k] = new_turn;
          ca_state[b + k] =
              my != 0 ? kCaCountdown : kCaAwaitSequenceEnd;
          ca_countdown[b + k] =
              my != 0 ? fresh_countdown : ca_countdown[b + k];
          ca_turns_taken[b + k] += my;
          ca_heard[b + k] = static_cast<std::uint8_t>(my != 0 ? 1u : 0u);
          took += my;
        }
        pending_turns += took;
        ++m;
      }
    } else {
      // Memo rounds: the per-lane feedback byte is a run constant, so an
      // awaiting station's only update is latching ca_heard. A lane that
      // hears silence from its memo must not be at its sequence end
      // (heard already set) — that transition needs the general path.
      std::uint8_t heard_mask[64];
      std::uint8_t* mask =
          K <= 64 ? heard_mask
                  : reinterpret_cast<std::uint8_t*>(fb_buffer.data());
      for (std::uint32_t k = 0; k < K; ++k)
        mask[k] = static_cast<std::uint8_t>(
            lane_ledger->memo_feedback(k) !=
            static_cast<std::uint8_t>(Feedback::kSilence));
      while (m < cap) {
        const std::size_t b = (si0 + m) * K;
        std::uint32_t ok = 1;
        for (std::uint32_t k = 0; k < K; ++k)
          ok &= static_cast<std::uint32_t>(ca_state[b + k] ==
                                           kCaAwaitSequenceEnd) &
                static_cast<std::uint32_t>(action[b + k] ==
                                           SlotAction::kListen) &
                (static_cast<std::uint32_t>(mask[k]) |
                 static_cast<std::uint32_t>(ca_heard[b + k] == 0));
        if (ok == 0) break;
        for (std::uint32_t k = 0; k < K; ++k) ca_heard[b + k] |= mask[k];
        ++m;
      }
    }
    if (m == 0) return 0;

    const Tick new_end = t + lengths[si0];  // uniform: one shared length
    for (std::size_t si = si0; si < si0 + m; ++si) {
      ++slot_index[si];
      slot_begin[si] = t;
      slot_end[si] = new_end;
      ++pend_station_slots[si];
    }
    now = t;
    next_station = si0 + m == cfg.n
                       ? 1
                       : static_cast<StationId>(next_station + m);
    if (quiet)
      lane_ledger->apply_all_quiet(m);
    else
      lane_ledger->apply_all_memo(m);
    for (std::uint32_t k = 0; k < K; ++k) pend_listen[k] += m;
    if (cfg.energy.enabled) {
      // One listen slot per (station, lane) pair in the run; queues are
      // untouched in a quiet run (no polls due, listens cannot deliver),
      // so q_empty is exactly the scalar engine's post-slot state.
      for (std::size_t si = si0; si < si0 + m; ++si)
        for (std::uint32_t k = 0; k < K; ++k)
          lane_ptr[k]->meter.add_idle(static_cast<StationId>(si + 1),
                                      q_empty[si * K + k] != 0);
    }
    if (any_injection) {
      for (const std::uint32_t k : active)
        if (lane_ptr[k]->injection)
          lane_ptr[k]->pending_polls_skipped += m;
    }
    pend_events += m;
    pend_slots_shared += m;
    pending_batches += m;
    steps_since_prune += m;
    if (steps_since_prune >= cfg.prune_interval) do_prune();
    return m;
  }

  // ---- snapshot / detachment ----

  /// Engine::save_state's exact byte layout, written from lane state.
  /// KEEP IN SYNC with sim/engine.cpp (the note there points back here).
  void save_lane_state(std::size_t k, snapshot::Writer& w) {
    const Lane& L = *lanes[k];
    if (L.engine) {
      L.engine->save_state(w);
      return;
    }
    // Fold the SoA slot counters in first: Collector bytes must match the
    // scalar engine's exactly (this is a no-op outside the lockstep loop).
    flush_metrics();
    const Frozen* fz = L.frozen.get();
    const std::vector<SlotIndex>& sidx = fz ? fz->slot_index : slot_index;
    const std::vector<Tick>& sbeg = fz ? fz->slot_begin : slot_begin;
    const std::vector<Tick>& send = fz ? fz->slot_end : slot_end;
    const Tick lane_now = fz ? fz->now : now;
    const std::uint64_t lane_steps =
        fz ? fz->steps_since_prune : steps_since_prune;

    w.u32(cfg.n);
    w.u32(cfg.bound_r);
    w.boolean(cfg.keep_channel_history);
    w.boolean(cfg.record_trace);
    w.boolean(cfg.record_deliveries);
    w.boolean(cfg.allow_control);

    for (std::uint32_t s = 0; s < cfg.n; ++s) {
      const StationContext& ctx = L.stations[s];
      w.u64(ctx.queue_.size());
      for (const Packet& p : ctx.queue_) {
        w.u64(p.seq);
        w.u32(p.station);
        w.i64(p.injected_at);
        w.i64(p.cost);
      }
      w.i64(ctx.queue_cost_);
      snapshot::save_rng(w, ctx.rng_);
      w.u64(sidx[s]);
      w.i64(sbeg[s]);
      w.i64(send[s]);
      const std::size_t i = static_cast<std::size_t>(s) * K + k;
      w.u8(static_cast<std::uint8_t>(action[i]));
      // CaArrowProtocol::save_state's field order (core/ca_arrow.cpp).
      w.u8(ca_state[i]);
      w.u32(ca_turn[i]);
      w.u64(ca_countdown[i]);
      w.boolean(ca_heard[i] != 0);
      w.u64(ca_turns_taken[i]);
    }

    // Slot policy: eligibility requires a policy whose save_state writes
    // nothing (probed at construction), so this spot is exactly empty.
    w.boolean(L.injection != nullptr);
    if (L.injection) L.injection->save_state(w);

    lane_ledger->save_state(static_cast<std::uint32_t>(k), w);
    L.metrics.save_state(w);

    const auto& slots = L.trace.slots();
    w.u64(slots.size());
    for (const trace::SlotRecord& rec : slots) {
      w.u32(rec.station);
      w.u64(rec.index);
      w.i64(rec.begin);
      w.i64(rec.end);
      w.u8(static_cast<std::uint8_t>(rec.action));
      w.u8(static_cast<std::uint8_t>(rec.feedback));
    }

    w.u64(L.deliveries.size());
    for (const DeliveryRecord& d : L.deliveries) {
      w.u64(d.seq);
      w.u32(d.station);
      w.i64(d.injected_at);
      w.i64(d.declared_cost);
      w.i64(d.realized_cost);
      w.i64(d.delivered_at);
    }

    w.i64(lane_now);
    w.i64(L.next_injection_poll);
    w.i64(L.last_injection_time);
    w.u64(L.next_seq);
    w.u32(L.last_successful);
    w.u64(lane_steps);
    w.u64(0);  // steps_since_checkpoint_ (checkpointing is ineligible)
    // An active lockstep lane's share of the shared slot delta rides in
    // pend_slots_shared; a frozen lane took its share at retirement.
    w.u64(fz ? L.pending_slots : L.pending_slots + pend_slots_shared);
    w.u64(L.pending_deliveries);
    w.u64(L.pending_injections);
    w.u64(L.pending_polls_skipped);

    w.boolean(cfg.energy.enabled);
    if (cfg.energy.enabled) {
      w.u64(cfg.energy.cost_transmit);
      w.u64(cfg.energy.cost_listen);
      w.u64(cfg.energy.cost_sleep);
      L.meter.save_state(w);
    }
  }

  /// Detach lane k: rebuild fresh materials via the lane's builder and
  /// overwrite the fresh Engine with the lane snapshot — byte-identical
  /// continuation by construction.
  void materialize(std::size_t k) {
    Lane& L = *lanes[k];
    AM_CHECK(!L.engine);
    snapshot::Writer w;
    save_lane_state(k, w);
    LaneMaterials m = L.builder();
    auto e = std::make_unique<Engine>(std::move(m.cfg), std::move(m.protocols),
                                      std::move(m.slot_policy),
                                      std::move(m.injection));
    snapshot::Reader r(w.buffer());
    e->load_state(r);
    L.engine = std::move(e);
    L.frozen.reset();
    L.retired = false;
    const auto it =
        std::find(active.begin(), active.end(), static_cast<std::uint32_t>(k));
    if (it != active.end()) active.erase(it);
    ++pending_detaches;
  }

  void run(const std::vector<StopCondition>& stops) {
    // Lanes outside the lockstep loop first: detached/fallback engines
    // advance directly; previously retired lanes must detach to advance
    // (the shared schedule moved on without them).
    for (std::uint32_t k = 0; k < K; ++k) {
      Lane& L = *lanes[k];
      const bool in_lockstep =
          std::find(active.begin(), active.end(), k) != active.end();
      if (in_lockstep && stops[k].predicate) materialize(k);
      if (L.engine) {
        L.engine->run(stops[k]);
      } else if (L.frozen) {
        materialize(k);
        L.engine->run(stops[k]);
      }
    }

    // The lockstep loop, with an O(1) stop gate. Every active lane
    // processes every event, so each lane's total_slots advances by
    // exactly one per event — a lane's slot-count stop therefore triggers
    // at a fixed future event number, and its time stop at a fixed time.
    // Folding those into two cohort-wide minima turns the per-event stop
    // evaluation (the scalar run() loop's pre-step checks, per lane) into
    // two comparisons; the per-lane scan runs only when a minimum fires,
    // which always retires at least one lane, so the loop cannot spin.
    std::vector<std::uint32_t> retiring;
    std::uint64_t events_done = 0;
    Tick min_max_time = kTickInfinity;
    std::uint64_t min_slot_trigger = UINT64_MAX;
    const auto recompute_gate = [&] {
      flush_metrics();  // total_slots reads below need the folded counters
      min_max_time = kTickInfinity;
      min_slot_trigger = UINT64_MAX;
      for (const std::uint32_t k : active) {
        min_max_time = std::min(min_max_time, stops[k].max_time);
        const std::uint64_t total = lanes[k]->metrics.stats().total_slots;
        const std::uint64_t max = stops[k].max_total_slots;
        // Event number (counted from this run() call) at which lane k's
        // slot condition total + e >= max first holds, saturating.
        const std::uint64_t remaining = max <= total ? 0 : max - total;
        const std::uint64_t trigger =
            remaining >= UINT64_MAX - events_done ? UINT64_MAX
                                                  : events_done + remaining;
        min_slot_trigger = std::min(min_slot_trigger, trigger);
      }
    };
    recompute_gate();
    while (!active.empty()) {
      const Tick t = peek_time();
      if (t > min_max_time || events_done >= min_slot_trigger) {
        flush_metrics();
        retiring.clear();
        for (const std::uint32_t k : active) {
          if (t > stops[k].max_time ||
              lanes[k]->metrics.stats().total_slots >=
                  stops[k].max_total_slots)
            retiring.push_back(k);
        }
        for (const std::uint32_t k : retiring) retire(k);
        if (active.empty()) break;
        recompute_gate();
      }
      std::uint64_t did = process_quiet_run(min_slot_trigger - events_done);
      if (did == 0) {
        process_event();
        did = 1;
      }
      events_done += did;
    }
    flush_cohort_telemetry();
  }
};

CohortEngine::CohortEngine(std::vector<LaneBuilder> builders)
    : impl_(std::make_unique<Impl>()) {
  AM_REQUIRE(!builders.empty(), "cohort needs at least one lane");
  Impl& im = *impl_;
  im.K = static_cast<std::uint32_t>(builders.size());

  std::vector<LaneMaterials> mats;
  mats.reserve(builders.size());
  for (auto& b : builders) {
    AM_REQUIRE(b != nullptr, "lane builder must be callable");
    mats.push_back(b());
  }

  // ---- fast-path eligibility, decided for the whole cohort ----
  // Shared facets must agree across lanes (seeds and injectors are free);
  // the protocol must be the lane-ized automaton; every station's slot
  // length must be fixed and identical across lanes (that is what makes
  // the event schedule shareable); no checkpointing, and the slot policy
  // must be snapshot-stateless (its save_state writes nothing) so lane
  // snapshots can splice an empty policy section.
  const EngineConfig& c0 = mats[0].cfg;
  bool eligible = c0.n >= 1 && c0.bound_r >= 1 && c0.prune_interval >= 1;
  const Tick max_ticks = static_cast<Tick>(c0.bound_r) * kTicksPerUnit;
  std::vector<Tick> lengths;
  for (const LaneMaterials& m : mats) {
    const EngineConfig& c = m.cfg;
    eligible = eligible && c.n == c0.n && c.bound_r == c0.bound_r &&
               c.keep_channel_history == c0.keep_channel_history &&
               c.record_trace == c0.record_trace &&
               c.record_deliveries == c0.record_deliveries &&
               c.allow_control == c0.allow_control &&
               c.prune_interval == c0.prune_interval &&
               c.restrained == c0.restrained && c.energy == c0.energy &&
               c.checkpoint_interval == 0 && !c.checkpoint_sink &&
               m.slot_policy != nullptr && m.protocols.size() == c.n;
    if (!eligible) break;
    for (const auto& p : m.protocols)
      eligible = eligible && p != nullptr && p->name() == kLaneizedProtocol;
    if (!eligible) break;
    std::vector<Tick> lane_lengths(c.n);
    for (std::uint32_t s = 1; s <= c.n; ++s) {
      const Tick len = m.slot_policy->fixed_length(s);
      eligible = eligible && len >= kTicksPerUnit && len <= max_ticks;
      lane_lengths[s - 1] = len;
    }
    snapshot::Writer probe;
    m.slot_policy->save_state(probe);
    eligible = eligible && probe.buffer().empty();
    if (lengths.empty())
      lengths = std::move(lane_lengths);
    else
      eligible = eligible && lane_lengths == lengths;
    if (!eligible) break;
  }

  if (!eligible) {
    // Scalar fallback: one real Engine per lane from birth. Construction
    // order inside each Engine is exactly the scalar order, so results
    // are trivially identical to independent scalar runs.
    for (std::uint32_t k = 0; k < im.K; ++k) {
      auto lane = std::make_unique<Impl::Lane>(1);
      lane->builder = std::move(builders[k]);
      lane->engine = std::make_unique<Engine>(
          std::move(mats[k].cfg), std::move(mats[k].protocols),
          std::move(mats[k].slot_policy), std::move(mats[k].injection));
      im.lanes.push_back(std::move(lane));
      im.lane_ptr.push_back(im.lanes.back().get());
    }
    return;
  }

  // ---- lockstep construction, mirroring the Engine constructor ----
  im.lockstep = true;
  im.cfg = c0;
  im.cfg.checkpoint_sink = nullptr;
  im.max_slot_ticks = max_ticks;
  im.lengths = std::move(lengths);
  const std::uint32_t n = im.cfg.n;
  im.events = SlotEventHeap(n);
  im.slot_index.assign(n, 0);
  im.slot_begin.assign(n, 0);
  im.slot_end.assign(n, 0);
  const std::size_t cells = static_cast<std::size_t>(n) * im.K;
  im.ca_state.assign(cells, kCaInit);
  im.ca_turn.assign(cells, 1);
  im.ca_countdown.assign(cells, 0);
  im.ca_heard.assign(cells, 0);
  im.ca_turns_taken.assign(cells, 0);
  im.action.assign(cells, SlotAction::kListen);
  im.q_empty.assign(cells, 1);  // queues start empty; poll_lane marks pushes
  im.uniform = std::all_of(im.lengths.begin(), im.lengths.end(),
                           [&](Tick l) { return l == im.lengths[0]; });
  im.lane_ledger = std::make_unique<channel::LaneLedger>(
      im.K, im.cfg.keep_channel_history, im.cfg.restrained);
  im.fb_buffer.assign(im.K, Feedback::kSilence);
  im.pend_station_slots.assign(n, 0);
  im.pend_listen.assign(im.K, 0);
  im.pend_tx_packet.assign(im.K, 0);
  im.pend_tx_control.assign(im.K, 0);
  im.pend_station_tx.assign(cells, 0);

  for (std::uint32_t k = 0; k < im.K; ++k) {
    auto lane = std::make_unique<Impl::Lane>(n);
    lane->builder = std::move(builders[k]);
    lane->injection = std::move(mats[k].injection);
    if (im.cfg.record_deliveries)
      lane->deliveries.reserve(mats[k].cfg.delivery_reserve_hint);
    util::Rng seeder(mats[k].cfg.seed);
    lane->stations.reserve(n);
    for (std::uint32_t s = 0; s < n; ++s)
      lane->stations.emplace_back(static_cast<StationId>(s + 1), n,
                                  im.cfg.bound_r, seeder.next());
    im.lanes.push_back(std::move(lane));
    im.lane_ptr.push_back(im.lanes.back().get());
    // Packets injected at time 0 are visible to the very first decision.
    im.poll_lane(k, 0);
    Impl::Lane& L = *im.lanes.back();
    L.next_injection_poll =
        L.injection ? L.injection->next_arrival_hint(0) : kTickInfinity;
    im.any_injection = im.any_injection || L.injection != nullptr;
    im.active.push_back(k);
  }

  // All stations commit their first slot at time 0 (station order, lane
  // inner — each lane sees exactly the scalar constructor's sequence).
  for (std::uint32_t s = 1; s <= n; ++s) {
    const Tick end = im.lengths[s - 1];
    for (std::uint32_t k = 0; k < im.K; ++k) {
      const std::size_t i = im.idx(s, k);
      const SlotAction first = im.ca_first_action(i, s);
      im.lane_commit_action(k, i, s, first, /*begin=*/0, end);
    }
    im.slot_index[s - 1] = 1;
    im.slot_begin[s - 1] = 0;
    im.slot_end[s - 1] = end;
    im.events.update(s, end);
  }
}

CohortEngine::~CohortEngine() {
  if (!impl_) return;
  Impl& im = *impl_;
  im.flush_metrics();
  for (const std::uint32_t k : im.active)
    im.lane_ptr[k]->pending_slots += im.pend_slots_shared;
  im.pend_slots_shared = 0;
  for (auto& lane : im.lanes)
    if (!lane->engine) im.flush_lane(*lane);
  im.flush_cohort_telemetry();
  // im.lane_ledger's destructor flushes each lane's channel telemetry.
}

std::size_t CohortEngine::lanes() const noexcept { return impl_->lanes.size(); }

bool CohortEngine::lockstep() const noexcept { return impl_->lockstep; }

bool CohortEngine::retired(std::size_t lane) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  return impl_->lanes[lane]->retired;
}

void CohortEngine::run(const StopCondition& stop) {
  run(std::vector<StopCondition>(lanes(), stop));
}

void CohortEngine::run(const std::vector<StopCondition>& stops) {
  AM_REQUIRE(stops.size() == lanes(), "one stop condition per lane");
  impl_->run(stops);
}

const metrics::RunStats& CohortEngine::stats(std::size_t lane) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  const Impl::Lane& L = *impl_->lanes[lane];
  if (L.engine) return L.engine->stats();
  impl_->flush_metrics();  // fold the SoA slot counters before observing
  return L.metrics.stats();
}

const energy::EnergyMeter& CohortEngine::energy_meter(std::size_t lane) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  const Impl::Lane& L = *impl_->lanes[lane];
  if (L.engine) return L.engine->energy_meter();
  return L.meter;  // charged eagerly — no fold needed
}

const channel::LedgerStats& CohortEngine::channel_stats(
    std::size_t lane) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  const Impl::Lane& L = *impl_->lanes[lane];
  if (L.engine) return L.engine->channel_stats();
  // LedgerStats update eagerly in the LaneLedger — no fold needed.
  return impl_->lane_ledger->stats(static_cast<std::uint32_t>(lane));
}

void CohortEngine::save_lane_state(std::size_t lane,
                                   snapshot::Writer& w) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  impl_->save_lane_state(lane, w);
}

Engine& CohortEngine::engine(std::size_t lane) {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  Impl::Lane& L = *impl_->lanes[lane];
  if (!L.engine) impl_->materialize(lane);
  return *L.engine;
}

}  // namespace asyncmac::sim
