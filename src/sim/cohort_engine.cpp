#include "sim/cohort_engine.h"

#include <algorithm>

#include "snapshot/io.h"
#include "snapshot/state.h"
#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::sim {

namespace {

// Write-only telemetry instruments (docs/OBSERVABILITY.md), batched like
// the scalar engine's: plain counters on the hot path, flushed at prune
// cadence / run() exit / destruction. "engine.*" names are shared with
// the scalar Engine (the registry resolves by name), so a lockstep lane
// contributes to the same instruments its scalar twin would.
struct CohortTelemetry {
  telemetry::Counter& batches =
      telemetry::Registry::global().counter("cohort.batches");
  telemetry::Counter& detaches =
      telemetry::Registry::global().counter("cohort.detaches");
  telemetry::Counter& lanes_retired =
      telemetry::Registry::global().counter("cohort.lanes_retired");
  telemetry::Counter& engine_slots =
      telemetry::Registry::global().counter("engine.slots");
  telemetry::Counter& engine_injections =
      telemetry::Registry::global().counter("engine.injections");
  telemetry::Counter& engine_deliveries =
      telemetry::Registry::global().counter("engine.deliveries");
  telemetry::Counter& engine_prunes =
      telemetry::Registry::global().counter("engine.prunes");
  telemetry::Counter& engine_polls_skipped =
      telemetry::Registry::global().counter("engine.injection_polls_skipped");
  telemetry::Counter& ca_arrow_turns =
      telemetry::Registry::global().counter("core.ca_arrow.turns");

  static CohortTelemetry& get() {
    static CohortTelemetry t;
    return t;
  }
};

// The lane-ized automaton. The cohort identifies it by Protocol::name()
// (no link-time dependency on core), and the state bytes below are the
// exact CaArrowProtocol::save_state layout — core/ca_arrow.cpp carries
// the matching KEEP IN SYNC note.
constexpr const char* kLaneizedProtocol = "CA-ARRoW";

// core::CaArrowProtocol::State values, pinned by its save_state u8.
constexpr std::uint8_t kCaInit = 0;
constexpr std::uint8_t kCaCountdown = 1;
constexpr std::uint8_t kCaDrain = 2;
constexpr std::uint8_t kCaNoise = 3;
constexpr std::uint8_t kCaAwaitSequenceEnd = 4;

}  // namespace

struct CohortEngine::Impl {
  // ---- shared across the cohort (meaningful when lockstep) ----
  bool lockstep = false;
  EngineConfig cfg;  ///< shared configuration facets (lane 0's; seeds vary)
  std::uint32_t K = 0;
  Tick max_slot_ticks = 0;
  std::vector<Tick> lengths;  ///< [station-1] fixed slot length, ticks

  // The shared schedule: fixed action-independent lengths make the
  // (end, station) event sequence identical across lanes, so one heap and
  // one per-station slot record drive every lane.
  SlotEventHeap events{1};
  std::vector<SlotIndex> slot_index;
  std::vector<Tick> slot_begin;
  std::vector<Tick> slot_end;
  Tick now = 0;
  std::uint64_t steps_since_prune = 0;

  /// All stations share one fixed slot length (the synchronous adversary).
  /// The heap's (end, station) lexicographic order then degenerates to a
  /// strict round-robin — every round all ends are equal, so ties resolve
  /// in ascending station order — and the scheduler becomes a counter:
  /// the heap (a measurable slice of the shared per-event cost at n=64)
  /// is bypassed entirely, yielding the exact same event sequence.
  bool uniform = false;
  StationId next_station = 1;

  // ---- per-(station, lane) protocol scalars, SoA ----
  // Index (station-1) * K + lane: station-major so the inner per-event
  // lane loop walks K contiguous entries.
  std::vector<std::uint8_t> ca_state;
  std::vector<std::uint32_t> ca_turn;
  std::vector<std::uint64_t> ca_countdown;
  std::vector<std::uint8_t> ca_heard;
  std::vector<std::uint64_t> ca_turns_taken;
  std::vector<SlotAction> action;
  /// 1 iff the (station, lane) queue is empty — a SoA mirror of
  /// StationContext::queue_empty(), maintained at the only two queue
  /// mutation sites (injection push, delivery pop) so the per-event lane
  /// loop never touches the scattered StationContext objects on the
  /// listen path (512 deque headers at n=64 x K=8 overflow L1).
  std::vector<std::uint8_t> q_empty;

  /// Shared-schedule snapshot frozen when a lane retires mid-run (the
  /// shared arrays keep advancing for the remaining lanes).
  struct Frozen {
    Tick now = 0;
    std::uint64_t steps_since_prune = 0;
    std::vector<SlotIndex> slot_index;
    std::vector<Tick> slot_begin;
    std::vector<Tick> slot_end;
  };

  struct Lane {
    Lane(bool keep_history, std::uint32_t n)
        : ledger(keep_history), metrics(n) {}

    LaneBuilder builder;
    // Live per-lane objects with the scalar engine's exact semantics.
    std::vector<StationContext> stations;
    std::unique_ptr<InjectionPolicy> injection;
    channel::Ledger ledger;
    metrics::Collector metrics;
    trace::Recorder trace;
    std::vector<DeliveryRecord> deliveries;
    // Engine cursors (per lane — mirror Engine's members).
    Tick next_injection_poll = 0;
    Tick last_injection_time = 0;
    PacketSeq next_seq = 1;
    StationId last_successful = kInvalidStation;
    // Batched telemetry deltas, flushed exactly when the scalar engine
    // would flush its own (prune cadence, lane stop, destruction) so the
    // serialized residue matches byte-for-byte.
    std::uint64_t pending_slots = 0;
    std::uint64_t pending_deliveries = 0;
    std::uint64_t pending_injections = 0;
    std::uint64_t pending_polls_skipped = 0;

    bool retired = false;
    std::unique_ptr<Frozen> frozen;  ///< set when retired
    std::unique_ptr<Engine> engine;  ///< set when detached / fallback
  };
  std::vector<std::unique_ptr<Lane>> lanes;
  /// Raw mirror of `lanes` for the per-event loops: one indirection
  /// instead of two (the unique_ptrs are stable after construction).
  std::vector<Lane*> lane_ptr;
  std::vector<std::uint32_t> active;  ///< lockstep lanes still advancing

  std::vector<Injection> injection_buffer;

  // Cohort-level batched telemetry.
  std::uint64_t pending_batches = 0;
  std::uint64_t pending_detaches = 0;
  std::uint64_t pending_lanes_retired = 0;
  std::uint64_t pending_turns = 0;  ///< core.ca_arrow.turns deltas

  /// Read-only window a lane exposes to its injection adversary —
  /// the lane-local equivalent of the scalar Engine's EngineView.
  struct LaneView final : EngineView {
    const Impl* impl;
    const Lane* lane;
    LaneView(const Impl* i, const Lane* l) : impl(i), lane(l) {}
    Tick now() const override { return impl->now; }
    std::uint32_t n() const override { return impl->cfg.n; }
    std::uint32_t bound_r() const override { return impl->cfg.bound_r; }
    std::size_t queue_size(StationId station) const override {
      return lane->stations[station - 1].queue_size();
    }
    Tick queue_cost(StationId station) const override {
      return lane->stations[station - 1].queue_cost();
    }
    const channel::LedgerStats& channel_stats() const override {
      return lane->ledger.stats();
    }
    StationId last_successful_station() const override {
      return lane->last_successful;
    }
    Tick fixed_slot_length(StationId station) const override {
      return impl->lengths[station - 1];
    }
  };

  std::size_t idx(StationId station, std::uint32_t lane) const {
    return static_cast<std::size_t>(station - 1) * K + lane;
  }

  // ---- the lane-ized CA-ARRoW automaton (port of core/ca_arrow.cpp) ----
  // The automaton steps and the action commitment below are forced inline:
  // they run K times per event inside process_event's lane loop, and at
  // n=64/K=8 the plain call overhead alone is a measurable slice of the
  // per-slot budget (the optimizer declines to inline them on its own).

  [[gnu::always_inline]] inline void ca_advance_turn(std::size_t i) {
    ca_turn[i] = (ca_turn[i] % cfg.n) + 1;
  }

  [[gnu::always_inline]] inline SlotAction ca_begin_phase(std::size_t i,
                                                          StationId id) {
    if (ca_turn[i] == id) {
      ++ca_turns_taken[i];
      ++pending_turns;
      ca_countdown[i] = 2ULL * cfg.bound_r;
      ca_state[i] = kCaCountdown;
    } else {
      ca_heard[i] = 0;
      ca_state[i] = kCaAwaitSequenceEnd;
    }
    return SlotAction::kListen;
  }

  /// next_action(nullopt) — the pre-first-slot decision.
  SlotAction ca_first_action(std::size_t i, StationId id) {
    AM_CHECK(ca_state[i] == kCaInit);
    ca_turn[i] = 1;
    return ca_begin_phase(i, id);
  }

  /// next_action(prev) after a slot ended with feedback `fb`.
  [[gnu::always_inline]] inline SlotAction ca_next_action(std::size_t i,
                                                          StationId id,
                                                          Feedback fb,
                                                          bool queue_empty) {
    switch (ca_state[i]) {
      case kCaCountdown:
        if (--ca_countdown[i] > 0) return SlotAction::kListen;
        if (queue_empty) {
          ca_state[i] = kCaNoise;
          return SlotAction::kTransmitControl;
        }
        ca_state[i] = kCaDrain;
        return SlotAction::kTransmitPacket;

      case kCaNoise:
        ca_advance_turn(i);
        return ca_begin_phase(i, id);

      case kCaDrain:
        if (!queue_empty) return SlotAction::kTransmitPacket;
        ca_advance_turn(i);
        return ca_begin_phase(i, id);

      case kCaAwaitSequenceEnd:
        if (fb != Feedback::kSilence) {
          ca_heard[i] = 1;
          return SlotAction::kListen;
        }
        if (ca_heard[i]) {
          ca_advance_turn(i);
          return ca_begin_phase(i, id);
        }
        return SlotAction::kListen;

      default:
        AM_CHECK(false);  // kCaInit is unreachable after the first slot
        return SlotAction::kListen;
    }
  }

  // ---- per-lane ports of the scalar engine's step pieces ----

  void poll_lane(std::uint32_t k, Tick t) {
    Lane& L = *lane_ptr[k];
    if (!L.injection) return;
    injection_buffer.clear();
    const LaneView view(this, &L);
    L.injection->poll(t, view, injection_buffer);
    for (const Injection& inj : injection_buffer) {
      AM_CHECK_MSG(inj.time <= t, "injection in the future");
      AM_CHECK_MSG(inj.time >= L.last_injection_time,
                   "injection times must be non-decreasing");
      AM_CHECK(inj.station >= 1 && inj.station <= cfg.n);
      AM_CHECK_MSG(inj.cost >= kTicksPerUnit && inj.cost <= max_slot_ticks,
                   "packet cost must lie in [1, R] time units");
      L.last_injection_time = inj.time;
      Packet p;
      p.seq = L.next_seq++;
      p.station = inj.station;
      p.injected_at = inj.time;
      p.cost = inj.cost;
      L.stations[inj.station - 1].push(p);
      q_empty[idx(inj.station, k)] = 0;
      L.metrics.on_injection(inj.station, inj.cost, t);
    }
    L.pending_injections += injection_buffer.size();
  }

  /// The per-lane half of Engine::begin_slot: validity checks, the action
  /// commitment and the ledger registration. The shared half (slot index/
  /// bounds and the heap re-key) runs once per event for all lanes.
  [[gnu::always_inline]] inline void lane_commit_action(Lane& L,
                                                        std::size_t i,
                                                        StationId id,
                                                        SlotAction a,
                                                        Tick begin, Tick end) {
    if (a == SlotAction::kTransmitPacket)
      AM_CHECK_MSG(!L.stations[id - 1].queue_empty(),
                   "station " << id << " transmits with empty queue");
    if (a == SlotAction::kTransmitControl)
      AM_CHECK_MSG(cfg.allow_control,
                   "control message in a no-control model (station " << id
                                                                     << ")");
    action[i] = a;
    if (is_transmit(a)) {
      channel::Transmission tx;
      tx.station = id;
      tx.begin = begin;
      tx.end = end;
      tx.is_control = (a == SlotAction::kTransmitControl);
      tx.packet = tx.is_control ? 0 : L.stations[id - 1].front().seq;
      L.ledger.add(tx);
    }
  }

  /// Engine::flush_telemetry for one lane.
  void flush_lane(Lane& L) {
    if ((L.pending_slots | L.pending_deliveries | L.pending_injections |
         L.pending_polls_skipped) == 0)
      return;
    CohortTelemetry& t = CohortTelemetry::get();
    t.engine_slots.add(L.pending_slots);
    t.engine_deliveries.add(L.pending_deliveries);
    t.engine_injections.add(L.pending_injections);
    t.engine_polls_skipped.add(L.pending_polls_skipped);
    L.pending_slots = L.pending_deliveries = L.pending_injections =
        L.pending_polls_skipped = 0;
  }

  void flush_cohort_telemetry() {
    if ((pending_batches | pending_detaches | pending_lanes_retired |
         pending_turns) == 0)
      return;
    CohortTelemetry& t = CohortTelemetry::get();
    t.batches.add(pending_batches);
    t.detaches.add(pending_detaches);
    t.lanes_retired.add(pending_lanes_retired);
    t.ca_arrow_turns.add(pending_turns);
    pending_batches = pending_detaches = pending_lanes_retired =
        pending_turns = 0;
  }

  /// A lane's stop triggered (mirrors the scalar run() loop exiting):
  /// freeze its view of the shared schedule and flush its telemetry, just
  /// as Engine::run flushes on exit.
  void retire(std::uint32_t k) {
    Lane& L = *lanes[k];
    auto fz = std::make_unique<Frozen>();
    fz->now = now;
    fz->steps_since_prune = steps_since_prune;
    fz->slot_index = slot_index;
    fz->slot_begin = slot_begin;
    fz->slot_end = slot_end;
    L.frozen = std::move(fz);
    L.retired = true;
    flush_lane(L);
    L.ledger.flush_telemetry();
    ++pending_lanes_retired;
    active.erase(std::find(active.begin(), active.end(), k));
  }

  /// One shared slot-end event, processed for every active lane — the
  /// lockstep mirror of Engine::step (same operations, same order, per
  /// lane; only the schedule bookkeeping is shared).
  /// Time of the next slot-end event without popping it.
  Tick peek_time() const {
    return uniform ? slot_end[next_station - 1] : events.top_time();
  }

  void process_event() {
    StationId id;
    Tick t;
    if (uniform) {
      id = next_station;
      t = slot_end[id - 1];
      next_station = next_station == cfg.n ? 1 : next_station + 1;
    } else {
      t = events.top_time();
      id = events.top_station();
    }
    now = t;
    const std::size_t si = id - 1;
    AM_CHECK(slot_end[si] == t);
    const Tick s_begin = slot_begin[si];
    const SlotIndex ended_index = slot_index[si];
    const Tick len = lengths[si];
    const Tick new_end = t + len;
    const std::size_t base = si * K;

    for (const std::uint32_t k : active) {
      Lane& L = *lane_ptr[k];
      // Injection skip-ahead, per lane (hints differ across seeds).
      if (t >= L.next_injection_poll) {
        poll_lane(k, t);
        L.next_injection_poll = L.injection->next_arrival_hint(t);
      } else if (L.injection) {
        ++L.pending_polls_skipped;
      }

      const std::size_t i = base + k;
      const Feedback fb = L.ledger.feedback(s_begin, t);
      const SlotAction act = action[i];
      if (act == SlotAction::kTransmitPacket && fb == Feedback::kAck) {
        StationContext& ctx = L.stations[si];
        const Packet p = ctx.pop_front();
        q_empty[i] = ctx.queue_empty() ? 1 : 0;
        L.last_successful = id;
        L.metrics.on_delivery(id, p.cost, p.injected_at, t - s_begin, t);
        if (cfg.record_deliveries)
          L.deliveries.push_back({p.seq, id, p.injected_at, p.cost,
                                  t - s_begin, t});
        ++L.pending_deliveries;
      }
      ++L.pending_slots;
      L.metrics.on_slot_end(id, act);
      if (cfg.record_trace)
        L.trace.record({id, ended_index, s_begin, t, act, fb});

      // (The lane-ized automaton ignores SlotResult::delivered.)
      const SlotAction next = ca_next_action(i, id, fb, q_empty[i] != 0);
      lane_commit_action(L, i, id, next, t, new_end);
    }

    // Shared schedule half of begin_slot, once for all lanes.
    ++slot_index[si];
    slot_begin[si] = t;
    slot_end[si] = new_end;
    if (!uniform) events.update(id, new_end);
    ++pending_batches;

    // Prune cadence — shared counter: every active lane has processed
    // exactly the events the counter counts, so it equals each lane's
    // scalar steps_since_prune_.
    if (++steps_since_prune >= cfg.prune_interval) {
      steps_since_prune = 0;
      Tick horizon = kTickInfinity;
      for (std::uint32_t s = 0; s < cfg.n; ++s)
        horizon = std::min(horizon, slot_begin[s]);
      CohortTelemetry::get().engine_prunes.add(active.size());
      for (const std::uint32_t k : active) {
        lane_ptr[k]->ledger.prune_before(horizon);
        flush_lane(*lane_ptr[k]);
      }
      flush_cohort_telemetry();
    }
  }

  // ---- snapshot / detachment ----

  /// Engine::save_state's exact byte layout, written from lane state.
  /// KEEP IN SYNC with sim/engine.cpp (the note there points back here).
  void save_lane_state(std::size_t k, snapshot::Writer& w) const {
    const Lane& L = *lanes[k];
    if (L.engine) {
      L.engine->save_state(w);
      return;
    }
    const Frozen* fz = L.frozen.get();
    const std::vector<SlotIndex>& sidx = fz ? fz->slot_index : slot_index;
    const std::vector<Tick>& sbeg = fz ? fz->slot_begin : slot_begin;
    const std::vector<Tick>& send = fz ? fz->slot_end : slot_end;
    const Tick lane_now = fz ? fz->now : now;
    const std::uint64_t lane_steps =
        fz ? fz->steps_since_prune : steps_since_prune;

    w.u32(cfg.n);
    w.u32(cfg.bound_r);
    w.boolean(cfg.keep_channel_history);
    w.boolean(cfg.record_trace);
    w.boolean(cfg.record_deliveries);
    w.boolean(cfg.allow_control);

    for (std::uint32_t s = 0; s < cfg.n; ++s) {
      const StationContext& ctx = L.stations[s];
      w.u64(ctx.queue_.size());
      for (const Packet& p : ctx.queue_) {
        w.u64(p.seq);
        w.u32(p.station);
        w.i64(p.injected_at);
        w.i64(p.cost);
      }
      w.i64(ctx.queue_cost_);
      snapshot::save_rng(w, ctx.rng_);
      w.u64(sidx[s]);
      w.i64(sbeg[s]);
      w.i64(send[s]);
      const std::size_t i = static_cast<std::size_t>(s) * K + k;
      w.u8(static_cast<std::uint8_t>(action[i]));
      // CaArrowProtocol::save_state's field order (core/ca_arrow.cpp).
      w.u8(ca_state[i]);
      w.u32(ca_turn[i]);
      w.u64(ca_countdown[i]);
      w.boolean(ca_heard[i] != 0);
      w.u64(ca_turns_taken[i]);
    }

    // Slot policy: eligibility requires a policy whose save_state writes
    // nothing (probed at construction), so this spot is exactly empty.
    w.boolean(L.injection != nullptr);
    if (L.injection) L.injection->save_state(w);

    L.ledger.save_state(w);
    L.metrics.save_state(w);

    const auto& slots = L.trace.slots();
    w.u64(slots.size());
    for (const trace::SlotRecord& rec : slots) {
      w.u32(rec.station);
      w.u64(rec.index);
      w.i64(rec.begin);
      w.i64(rec.end);
      w.u8(static_cast<std::uint8_t>(rec.action));
      w.u8(static_cast<std::uint8_t>(rec.feedback));
    }

    w.u64(L.deliveries.size());
    for (const DeliveryRecord& d : L.deliveries) {
      w.u64(d.seq);
      w.u32(d.station);
      w.i64(d.injected_at);
      w.i64(d.declared_cost);
      w.i64(d.realized_cost);
      w.i64(d.delivered_at);
    }

    w.i64(lane_now);
    w.i64(L.next_injection_poll);
    w.i64(L.last_injection_time);
    w.u64(L.next_seq);
    w.u32(L.last_successful);
    w.u64(lane_steps);
    w.u64(0);  // steps_since_checkpoint_ (checkpointing is ineligible)
    w.u64(L.pending_slots);
    w.u64(L.pending_deliveries);
    w.u64(L.pending_injections);
    w.u64(L.pending_polls_skipped);
  }

  /// Detach lane k: rebuild fresh materials via the lane's builder and
  /// overwrite the fresh Engine with the lane snapshot — byte-identical
  /// continuation by construction.
  void materialize(std::size_t k) {
    Lane& L = *lanes[k];
    AM_CHECK(!L.engine);
    snapshot::Writer w;
    save_lane_state(k, w);
    LaneMaterials m = L.builder();
    auto e = std::make_unique<Engine>(std::move(m.cfg), std::move(m.protocols),
                                      std::move(m.slot_policy),
                                      std::move(m.injection));
    snapshot::Reader r(w.buffer());
    e->load_state(r);
    L.engine = std::move(e);
    L.frozen.reset();
    L.retired = false;
    const auto it =
        std::find(active.begin(), active.end(), static_cast<std::uint32_t>(k));
    if (it != active.end()) active.erase(it);
    ++pending_detaches;
  }

  void run(const std::vector<StopCondition>& stops) {
    // Lanes outside the lockstep loop first: detached/fallback engines
    // advance directly; previously retired lanes must detach to advance
    // (the shared schedule moved on without them).
    for (std::uint32_t k = 0; k < K; ++k) {
      Lane& L = *lanes[k];
      const bool in_lockstep =
          std::find(active.begin(), active.end(), k) != active.end();
      if (in_lockstep && stops[k].predicate) materialize(k);
      if (L.engine) {
        L.engine->run(stops[k]);
      } else if (L.frozen) {
        materialize(k);
        L.engine->run(stops[k]);
      }
    }

    // The lockstep loop, with an O(1) stop gate. Every active lane
    // processes every event, so each lane's total_slots advances by
    // exactly one per event — a lane's slot-count stop therefore triggers
    // at a fixed future event number, and its time stop at a fixed time.
    // Folding those into two cohort-wide minima turns the per-event stop
    // evaluation (the scalar run() loop's pre-step checks, per lane) into
    // two comparisons; the per-lane scan runs only when a minimum fires,
    // which always retires at least one lane, so the loop cannot spin.
    std::vector<std::uint32_t> retiring;
    std::uint64_t events_done = 0;
    Tick min_max_time = kTickInfinity;
    std::uint64_t min_slot_trigger = UINT64_MAX;
    const auto recompute_gate = [&] {
      min_max_time = kTickInfinity;
      min_slot_trigger = UINT64_MAX;
      for (const std::uint32_t k : active) {
        min_max_time = std::min(min_max_time, stops[k].max_time);
        const std::uint64_t total = lanes[k]->metrics.stats().total_slots;
        const std::uint64_t max = stops[k].max_total_slots;
        // Event number (counted from this run() call) at which lane k's
        // slot condition total + e >= max first holds, saturating.
        const std::uint64_t remaining = max <= total ? 0 : max - total;
        const std::uint64_t trigger =
            remaining >= UINT64_MAX - events_done ? UINT64_MAX
                                                  : events_done + remaining;
        min_slot_trigger = std::min(min_slot_trigger, trigger);
      }
    };
    recompute_gate();
    while (!active.empty()) {
      const Tick t = peek_time();
      if (t > min_max_time || events_done >= min_slot_trigger) {
        retiring.clear();
        for (const std::uint32_t k : active) {
          if (t > stops[k].max_time ||
              lanes[k]->metrics.stats().total_slots >=
                  stops[k].max_total_slots)
            retiring.push_back(k);
        }
        for (const std::uint32_t k : retiring) retire(k);
        if (active.empty()) break;
        recompute_gate();
      }
      process_event();
      ++events_done;
    }
    flush_cohort_telemetry();
  }
};

CohortEngine::CohortEngine(std::vector<LaneBuilder> builders)
    : impl_(std::make_unique<Impl>()) {
  AM_REQUIRE(!builders.empty(), "cohort needs at least one lane");
  Impl& im = *impl_;
  im.K = static_cast<std::uint32_t>(builders.size());

  std::vector<LaneMaterials> mats;
  mats.reserve(builders.size());
  for (auto& b : builders) {
    AM_REQUIRE(b != nullptr, "lane builder must be callable");
    mats.push_back(b());
  }

  // ---- fast-path eligibility, decided for the whole cohort ----
  // Shared facets must agree across lanes (seeds and injectors are free);
  // the protocol must be the lane-ized automaton; every station's slot
  // length must be fixed and identical across lanes (that is what makes
  // the event schedule shareable); no checkpointing, and the slot policy
  // must be snapshot-stateless (its save_state writes nothing) so lane
  // snapshots can splice an empty policy section.
  const EngineConfig& c0 = mats[0].cfg;
  bool eligible = c0.n >= 1 && c0.bound_r >= 1 && c0.prune_interval >= 1;
  const Tick max_ticks = static_cast<Tick>(c0.bound_r) * kTicksPerUnit;
  std::vector<Tick> lengths;
  for (const LaneMaterials& m : mats) {
    const EngineConfig& c = m.cfg;
    eligible = eligible && c.n == c0.n && c.bound_r == c0.bound_r &&
               c.keep_channel_history == c0.keep_channel_history &&
               c.record_trace == c0.record_trace &&
               c.record_deliveries == c0.record_deliveries &&
               c.allow_control == c0.allow_control &&
               c.prune_interval == c0.prune_interval &&
               c.checkpoint_interval == 0 && !c.checkpoint_sink &&
               m.slot_policy != nullptr && m.protocols.size() == c.n;
    if (!eligible) break;
    for (const auto& p : m.protocols)
      eligible = eligible && p != nullptr && p->name() == kLaneizedProtocol;
    if (!eligible) break;
    std::vector<Tick> lane_lengths(c.n);
    for (std::uint32_t s = 1; s <= c.n; ++s) {
      const Tick len = m.slot_policy->fixed_length(s);
      eligible = eligible && len >= kTicksPerUnit && len <= max_ticks;
      lane_lengths[s - 1] = len;
    }
    snapshot::Writer probe;
    m.slot_policy->save_state(probe);
    eligible = eligible && probe.buffer().empty();
    if (lengths.empty())
      lengths = std::move(lane_lengths);
    else
      eligible = eligible && lane_lengths == lengths;
    if (!eligible) break;
  }

  if (!eligible) {
    // Scalar fallback: one real Engine per lane from birth. Construction
    // order inside each Engine is exactly the scalar order, so results
    // are trivially identical to independent scalar runs.
    for (std::uint32_t k = 0; k < im.K; ++k) {
      auto lane = std::make_unique<Impl::Lane>(false, 1);
      lane->builder = std::move(builders[k]);
      lane->engine = std::make_unique<Engine>(
          std::move(mats[k].cfg), std::move(mats[k].protocols),
          std::move(mats[k].slot_policy), std::move(mats[k].injection));
      im.lanes.push_back(std::move(lane));
      im.lane_ptr.push_back(im.lanes.back().get());
    }
    return;
  }

  // ---- lockstep construction, mirroring the Engine constructor ----
  im.lockstep = true;
  im.cfg = c0;
  im.cfg.checkpoint_sink = nullptr;
  im.max_slot_ticks = max_ticks;
  im.lengths = std::move(lengths);
  const std::uint32_t n = im.cfg.n;
  im.events = SlotEventHeap(n);
  im.slot_index.assign(n, 0);
  im.slot_begin.assign(n, 0);
  im.slot_end.assign(n, 0);
  const std::size_t cells = static_cast<std::size_t>(n) * im.K;
  im.ca_state.assign(cells, kCaInit);
  im.ca_turn.assign(cells, 1);
  im.ca_countdown.assign(cells, 0);
  im.ca_heard.assign(cells, 0);
  im.ca_turns_taken.assign(cells, 0);
  im.action.assign(cells, SlotAction::kListen);
  im.q_empty.assign(cells, 1);  // queues start empty; poll_lane marks pushes
  im.uniform = std::all_of(im.lengths.begin(), im.lengths.end(),
                           [&](Tick l) { return l == im.lengths[0]; });

  for (std::uint32_t k = 0; k < im.K; ++k) {
    auto lane =
        std::make_unique<Impl::Lane>(im.cfg.keep_channel_history, n);
    lane->builder = std::move(builders[k]);
    lane->injection = std::move(mats[k].injection);
    if (im.cfg.record_deliveries)
      lane->deliveries.reserve(mats[k].cfg.delivery_reserve_hint);
    util::Rng seeder(mats[k].cfg.seed);
    lane->stations.reserve(n);
    for (std::uint32_t s = 0; s < n; ++s)
      lane->stations.emplace_back(static_cast<StationId>(s + 1), n,
                                  im.cfg.bound_r, seeder.next());
    im.lanes.push_back(std::move(lane));
    im.lane_ptr.push_back(im.lanes.back().get());
    // Packets injected at time 0 are visible to the very first decision.
    im.poll_lane(k, 0);
    Impl::Lane& L = *im.lanes.back();
    L.next_injection_poll =
        L.injection ? L.injection->next_arrival_hint(0) : kTickInfinity;
    im.active.push_back(k);
  }

  // All stations commit their first slot at time 0 (station order, lane
  // inner — each lane sees exactly the scalar constructor's sequence).
  for (std::uint32_t s = 1; s <= n; ++s) {
    const Tick end = im.lengths[s - 1];
    for (std::uint32_t k = 0; k < im.K; ++k) {
      const std::size_t i = im.idx(s, k);
      const SlotAction first = im.ca_first_action(i, s);
      im.lane_commit_action(*im.lane_ptr[k], i, s, first, /*begin=*/0, end);
    }
    im.slot_index[s - 1] = 1;
    im.slot_begin[s - 1] = 0;
    im.slot_end[s - 1] = end;
    im.events.update(s, end);
  }
}

CohortEngine::~CohortEngine() {
  if (!impl_) return;
  for (auto& lane : impl_->lanes)
    if (!lane->engine) impl_->flush_lane(*lane);
  impl_->flush_cohort_telemetry();
}

std::size_t CohortEngine::lanes() const noexcept { return impl_->lanes.size(); }

bool CohortEngine::lockstep() const noexcept { return impl_->lockstep; }

bool CohortEngine::retired(std::size_t lane) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  return impl_->lanes[lane]->retired;
}

void CohortEngine::run(const StopCondition& stop) {
  run(std::vector<StopCondition>(lanes(), stop));
}

void CohortEngine::run(const std::vector<StopCondition>& stops) {
  AM_REQUIRE(stops.size() == lanes(), "one stop condition per lane");
  impl_->run(stops);
}

const metrics::RunStats& CohortEngine::stats(std::size_t lane) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  const Impl::Lane& L = *impl_->lanes[lane];
  return L.engine ? L.engine->stats() : L.metrics.stats();
}

const channel::LedgerStats& CohortEngine::channel_stats(
    std::size_t lane) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  const Impl::Lane& L = *impl_->lanes[lane];
  return L.engine ? L.engine->channel_stats() : L.ledger.stats();
}

void CohortEngine::save_lane_state(std::size_t lane,
                                   snapshot::Writer& w) const {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  impl_->save_lane_state(lane, w);
}

Engine& CohortEngine::engine(std::size_t lane) {
  AM_REQUIRE(lane < impl_->lanes.size(), "lane index out of range");
  Impl::Lane& L = *impl_->lanes[lane];
  if (!L.engine) impl_->materialize(lane);
  return *L.engine;
}

}  // namespace asyncmac::sim
