// asyncmac/sim/station.h
//
// StationContext is the *entire* world a protocol may observe, enforcing
// the paper's information model: a station knows its ID, n, the asynchrony
// bound R, and the contents of its own packet queue. It has no clock, no
// slot-length information and no view of other stations — those can only
// be inferred from channel feedback.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/packet.h"
#include "util/rng.h"
#include "util/types.h"

namespace asyncmac::adversary {
class MirrorRun;  // Theorem-2 lower-bound driver (virtual executions)
}

namespace asyncmac::live {
class StationMachine;  // live-channel client driving a Protocol remotely
}

namespace asyncmac::sim {

class Engine;
class CohortEngine;

class StationContext {
 public:
  StationContext(StationId id, std::uint32_t n, std::uint32_t bound_r,
                 std::uint64_t rng_seed);

  StationId id() const noexcept { return id_; }
  std::uint32_t n() const noexcept { return n_; }
  /// The known upper bound R >= 1 on slot length (in time units).
  std::uint32_t bound_r() const noexcept { return bound_r_; }

  std::size_t queue_size() const noexcept { return queue_.size(); }
  bool queue_empty() const noexcept { return queue_.empty(); }
  Tick queue_cost() const noexcept { return queue_cost_; }

  /// Station-local RNG for randomized protocols (e.g. slotted ALOHA).
  /// Deterministic protocols must not use it.
  util::Rng& rng() noexcept { return rng_; }

 private:
  friend class Engine;        // queue is mutated only by the engines
  friend class CohortEngine;  // (lockstep lanes mirror Engine exactly)
  friend class asyncmac::adversary::MirrorRun;  // and by virtual runs
  // The live-channel station client replays the engine's queue operations
  // from daemon feedback (push on injection, pop on delivery), keeping the
  // protocol's observable world identical to a simulated run.
  friend class asyncmac::live::StationMachine;

  void push(const Packet& p);
  Packet pop_front();
  const Packet& front() const;

  StationId id_;
  std::uint32_t n_;
  std::uint32_t bound_r_;
  std::deque<Packet> queue_;
  Tick queue_cost_ = 0;
  util::Rng rng_;
};

}  // namespace asyncmac::sim
