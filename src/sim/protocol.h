// asyncmac/sim/protocol.h
//
// The deterministic-automaton interface every MAC protocol implements.
// A protocol is driven entirely by slot boundaries: before each of its
// slots it commits to listen or transmit, and at the end of the slot it
// receives the channel feedback. This mirrors the paper's model where all
// local computation happens between consecutive slots and all channel
// operations span exactly one slot.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sim/station.h"
#include "snapshot/fwd.h"
#include "util/types.h"

namespace asyncmac::sim {

/// What happened in the slot that just ended, from the station's own
/// point of view. Note the deliberate absence of any timing information —
/// stations cannot measure slot lengths (Section II).
struct SlotResult {
  SlotAction action = SlotAction::kListen;  ///< the station's own action
  Feedback feedback = Feedback::kSilence;   ///< channel feedback at slot end
  /// True iff `action` was kTransmitPacket and the transmission succeeded
  /// (equivalently feedback == kAck for a transmitter); the engine has
  /// already removed the delivered packet from the queue.
  bool delivered = false;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Deep copy, including all mutable automaton state. Required so that
  /// adaptive adversaries (the Theorem-2 mirror-execution driver) can run
  /// virtual continuations of a station without disturbing the real one.
  virtual std::unique_ptr<Protocol> clone() const = 0;

  /// Decide the action for the station's next slot. Called once with
  /// `prev == nullopt` before the first slot, then after every slot with
  /// that slot's result. Must be deterministic unless the protocol is
  /// explicitly randomized (ctx.rng()).
  virtual SlotAction next_action(const std::optional<SlotResult>& prev,
                                 StationContext& ctx) = 0;

  virtual std::string name() const = 0;

  /// True when the protocol may emit kTransmitControl slots. The engine
  /// uses this to enforce the model split of Table I (algorithms "allowed
  /// control messages" vs not).
  virtual bool uses_control_messages() const { return false; }

  /// One-shot protocols (leader election / SST) report completion so that
  /// drivers can stop early; ongoing PT protocols never finish.
  virtual bool finished() const { return false; }

  /// Checkpoint/resume (docs/CHECKPOINT.md): serialize every mutable
  /// automaton field. The defaults are correct ONLY for protocols with no
  /// mutable state outside StationContext (the engine snapshots the queue
  /// and ctx RNG itself); any protocol with member state must override
  /// both. load_state is called on a freshly constructed protocol built
  /// from the same configuration; `ctx` provides id/n/R for protocols
  /// that rebuild sub-automata (e.g. AO-ARRoW's leader-election factory).
  virtual void save_state(snapshot::Writer& w) const { (void)w; }
  virtual void load_state(snapshot::Reader& r, StationContext& ctx) {
    (void)r;
    (void)ctx;
  }
};

}  // namespace asyncmac::sim
