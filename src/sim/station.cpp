#include "sim/station.h"

#include "util/check.h"

namespace asyncmac::sim {

StationContext::StationContext(StationId id, std::uint32_t n,
                               std::uint32_t bound_r, std::uint64_t rng_seed)
    : id_(id), n_(n), bound_r_(bound_r), rng_(rng_seed) {
  AM_REQUIRE(id >= 1 && id <= n, "station id must be in [1, n]");
  AM_REQUIRE(bound_r >= 1, "R must be >= 1");
}

void StationContext::push(const Packet& p) {
  queue_.push_back(p);
  queue_cost_ += p.cost;
}

Packet StationContext::pop_front() {
  AM_CHECK(!queue_.empty());
  Packet p = queue_.front();
  queue_.pop_front();
  queue_cost_ -= p.cost;
  return p;
}

const Packet& StationContext::front() const {
  AM_CHECK(!queue_.empty());
  return queue_.front();
}

}  // namespace asyncmac::sim
