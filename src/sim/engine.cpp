#include "sim/engine.h"

#include <algorithm>

#include "snapshot/state.h"
#include "telemetry/registry.h"
#include "util/check.h"

namespace asyncmac::sim {

namespace {
// Write-only telemetry instruments (docs/OBSERVABILITY.md). The hot loop
// never touches these directly: per-step deltas accumulate in plain
// Engine members and are pushed here by flush_telemetry() on the cold
// path (prune cadence, run() exit, destruction), so the innermost path
// performs no atomic operations for telemetry at all.
struct EngineTelemetry {
  telemetry::Counter& slots =
      telemetry::Registry::global().counter("engine.slots");
  telemetry::Counter& injections =
      telemetry::Registry::global().counter("engine.injections");
  telemetry::Counter& deliveries =
      telemetry::Registry::global().counter("engine.deliveries");
  telemetry::Counter& prunes =
      telemetry::Registry::global().counter("engine.prunes");
  telemetry::Counter& polls_skipped =
      telemetry::Registry::global().counter("engine.injection_polls_skipped");

  static EngineTelemetry& get() {
    static EngineTelemetry t;
    return t;
  }
};
}  // namespace

Engine::Engine(EngineConfig cfg,
               std::vector<std::unique_ptr<Protocol>> protocols,
               std::unique_ptr<SlotPolicy> slot_policy,
               std::unique_ptr<InjectionPolicy> injection)
    : cfg_(cfg),
      slot_policy_(std::move(slot_policy)),
      injection_(std::move(injection)),
      ledger_(cfg.keep_channel_history, cfg.restrained),
      metrics_(cfg.n),
      meter_(cfg.n),
      events_(cfg.n) {
  AM_REQUIRE(cfg_.n >= 1, "need at least one station");
  AM_REQUIRE(cfg_.bound_r >= 1, "R must be >= 1");
  AM_REQUIRE(cfg_.prune_interval >= 1, "prune interval must be >= 1");
  AM_REQUIRE(protocols.size() == cfg_.n, "one protocol per station");
  AM_REQUIRE(slot_policy_ != nullptr, "slot policy is required");
  max_slot_ticks_ = static_cast<Tick>(cfg_.bound_r) * kTicksPerUnit;

  if (cfg_.record_deliveries)
    deliveries_.reserve(cfg_.delivery_reserve_hint);

  util::Rng seeder(cfg_.seed);
  stations_.reserve(cfg_.n);
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    AM_REQUIRE(protocols[i] != nullptr, "protocol must not be null");
    stations_.emplace_back(static_cast<StationId>(i + 1), cfg_.n,
                           cfg_.bound_r, seeder.next(),
                           std::move(protocols[i]));
  }

  // Packets injected at time 0 are visible to the very first decision.
  poll_injections(0);
  next_injection_poll_ =
      injection_ ? injection_->next_arrival_hint(0) : kTickInfinity;

  // All stations wake up simultaneously at time 0 (Section II / Lemma 1's
  // base case) and commit their first slot.
  for (auto& s : stations_) {
    const SlotAction first = s.protocol->next_action(std::nullopt, s.ctx);
    begin_slot(s, /*begin=*/0, first);
  }
}

Engine::~Engine() { flush_telemetry(); }

Engine::StationRuntime& Engine::rt(StationId id) {
  AM_CHECK(id >= 1 && id <= stations_.size());
  return stations_[id - 1];
}

const Engine::StationRuntime& Engine::rt(StationId id) const {
  AM_CHECK(id >= 1 && id <= stations_.size());
  return stations_[id - 1];
}

void Engine::begin_slot(StationRuntime& s, Tick begin, SlotAction action) {
  if (action == SlotAction::kTransmitPacket)
    AM_CHECK_MSG(!s.ctx.queue_empty(),
                 "station " << s.ctx.id() << " transmits with empty queue");
  if (action == SlotAction::kTransmitControl)
    AM_CHECK_MSG(cfg_.allow_control,
                 "control message in a no-control model (station "
                     << s.ctx.id() << ")");

  ++s.slot_index;
  s.slot_begin = begin;
  s.action = action;
  const Tick len =
      slot_policy_->slot_length(s.ctx.id(), s.slot_index, begin, action);
  AM_CHECK_MSG(len >= kTicksPerUnit && len <= max_slot_ticks_,
               "slot policy returned length " << len << " outside [1, R] for "
                                              << "station " << s.ctx.id());
  s.slot_end = begin + len;

  if (is_transmit(action)) {
    channel::Transmission tx;
    tx.station = s.ctx.id();
    tx.begin = begin;
    tx.end = s.slot_end;
    tx.is_control = (action == SlotAction::kTransmitControl);
    tx.packet = tx.is_control ? 0 : s.ctx.front().seq;
    ledger_.add(tx);
  }
  // Re-key the station's single pending event in place (no push/pop).
  events_.update(s.ctx.id(), s.slot_end);
}

void Engine::poll_injections(Tick now) {
  if (!injection_) return;
  injection_buffer_.clear();
  injection_->poll(now, *this, injection_buffer_);
  for (const Injection& inj : injection_buffer_) {
    AM_CHECK_MSG(inj.time <= now, "injection in the future");
    AM_CHECK_MSG(inj.time >= last_injection_time_,
                 "injection times must be non-decreasing");
    AM_CHECK(inj.station >= 1 && inj.station <= cfg_.n);
    AM_CHECK_MSG(inj.cost >= kTicksPerUnit && inj.cost <= max_slot_ticks_,
                 "packet cost must lie in [1, R] time units");
    last_injection_time_ = inj.time;
    Packet p;
    p.seq = next_seq_++;
    p.station = inj.station;
    p.injected_at = inj.time;
    p.cost = inj.cost;
    rt(inj.station).ctx.push(p);
    metrics_.on_injection(inj.station, inj.cost, now);
  }
  pending_injections_ += injection_buffer_.size();
}

bool Engine::step() {
  if (events_.empty()) return false;
  const Tick t = events_.top_time();
  const StationId id = events_.top_station();
  now_ = t;
  // Injection skip-ahead: the standing hint bounds the next time a poll
  // could matter, so events strictly before it skip the virtual poll
  // entirely (exact by the next_arrival_hint contract).
  if (t >= next_injection_poll_) {
    poll_injections(t);
    next_injection_poll_ = injection_->next_arrival_hint(t);
  } else if (injection_) {
    ++pending_polls_skipped_;
  }

  StationRuntime& s = stations_[id - 1];
  AM_CHECK(s.slot_end == t);

  const Feedback fb = ledger_.feedback(s.slot_begin, s.slot_end);
  bool delivered = false;
  // Unrestrained, a transmitter's ack can only come from its own
  // transmission (any other successful end inside its slot would overlap
  // it). A rejected transmission never reached the medium, though, so
  // under a reject-mode restrained channel the ack may belong to another
  // station's transmission ending inside this slot — confirm ownership.
  if (s.action == SlotAction::kTransmitPacket && fb == Feedback::kAck &&
      (!cfg_.restrained.enabled() ||
       ledger_.transmission_successful(id, s.slot_end))) {
    const Packet p = s.ctx.pop_front();
    delivered = true;
    last_successful_ = id;
    const Tick realized = s.slot_end - s.slot_begin;
    metrics_.on_delivery(id, p.cost, p.injected_at, realized, t);
    if (cfg_.record_deliveries)
      deliveries_.push_back(
          {p.seq, id, p.injected_at, p.cost, realized, t});
    ++pending_deliveries_;
  }
  ++pending_slots_;
  metrics_.on_slot_end(id, s.action);
  if (cfg_.energy.enabled) {
    // Billed strictly after every simulation decision of the slot (the
    // queue state is post-delivery), so accounting can never perturb the
    // run — see energy/model.h for the billing rules.
    if (is_transmit(s.action))
      meter_.add_transmit(id);
    else
      meter_.add_idle(id, s.ctx.queue_empty());
  }
  if (cfg_.record_trace)
    trace_.record({id, s.slot_index, s.slot_begin, s.slot_end, s.action, fb});

  const SlotResult result{s.action, fb, delivered};
  const SlotAction next = s.protocol->next_action(result, s.ctx);
  begin_slot(s, /*begin=*/t, next);

  maybe_prune();
  if (cfg_.checkpoint_interval != 0 &&
      ++steps_since_checkpoint_ >= cfg_.checkpoint_interval) {
    steps_since_checkpoint_ = 0;
    if (cfg_.checkpoint_sink) cfg_.checkpoint_sink(*this);
  }
#if defined(__GNUC__) || defined(__clang__)
  // The re-keyed heap already names the next event's station; pull its
  // runtime and protocol toward L1 while the loop overhead runs. With
  // many stations the next runtime is usually cold — this hides most of
  // that latency and is a pure hint (no semantic effect).
  const StationRuntime& ns = stations_[events_.top_station() - 1];
  __builtin_prefetch(&ns);
  __builtin_prefetch(ns.protocol.get());
#endif
  return true;
}

void Engine::maybe_prune() {
  // Pruning is safe under keep_channel_history too: the ledger archives
  // pruned entries into full_history(), so inspection semantics are
  // unchanged while the live window — and with it every feedback() and
  // finalize_until() scan — stays bounded instead of growing with the
  // horizon (O(T^2) total work on long history runs).
  if (++steps_since_prune_ < cfg_.prune_interval) return;
  steps_since_prune_ = 0;
  Tick horizon = kTickInfinity;
  for (const auto& s : stations_) horizon = std::min(horizon, s.slot_begin);
  ledger_.prune_before(horizon);
  EngineTelemetry::get().prunes.add();
  flush_telemetry();
}

void Engine::flush_telemetry() {
  if ((pending_slots_ | pending_deliveries_ | pending_injections_ |
       pending_polls_skipped_) == 0)
    return;
  EngineTelemetry& t = EngineTelemetry::get();
  t.slots.add(pending_slots_);
  t.deliveries.add(pending_deliveries_);
  t.injections.add(pending_injections_);
  t.polls_skipped.add(pending_polls_skipped_);
  pending_slots_ = pending_deliveries_ = pending_injections_ =
      pending_polls_skipped_ = 0;
}

void Engine::run(const StopCondition& stop) {
  while (!events_.empty()) {
    if (events_.top_time() > stop.max_time) break;
    if (stats().total_slots >= stop.max_total_slots) break;
    if (!step()) break;
    if (stop.predicate && stop.predicate(*this)) break;
  }
  flush_telemetry();
  ledger_.flush_telemetry();
}

std::size_t Engine::queue_size(StationId station) const {
  return rt(station).ctx.queue_size();
}

Tick Engine::queue_cost(StationId station) const {
  return rt(station).ctx.queue_cost();
}

const channel::LedgerStats& Engine::channel_stats() const {
  return ledger_.stats();
}

Tick Engine::fixed_slot_length(StationId station) const {
  return slot_policy_->fixed_length(station);
}

const Protocol& Engine::protocol(StationId station) const {
  return *rt(station).protocol;
}

Protocol& Engine::protocol_mut(StationId station) {
  return *rt(station).protocol;
}

const StationContext& Engine::context(StationId station) const {
  return rt(station).ctx;
}

std::uint64_t Engine::station_slots(StationId station) const {
  return rt(station).slot_index;
}

bool Engine::all_finished() const {
  return std::all_of(stations_.begin(), stations_.end(),
                     [](const StationRuntime& s) {
                       return s.protocol->finished();
                     });
}

// ------------------------------------------------------ checkpoint/resume

namespace {

[[noreturn]] void throw_mismatch(const char* what) {
  throw snapshot::SnapshotError(
      snapshot::ErrorKind::kMismatch,
      std::string("engine snapshot was saved under a different ") + what);
}

SlotAction read_action(snapshot::Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > static_cast<std::uint8_t>(SlotAction::kTransmitControl))
    throw snapshot::SnapshotError(snapshot::ErrorKind::kCorrupt,
                                  "invalid slot action byte");
  return static_cast<SlotAction>(v);
}

Feedback read_feedback(snapshot::Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > static_cast<std::uint8_t>(Feedback::kAck))
    throw snapshot::SnapshotError(snapshot::ErrorKind::kCorrupt,
                                  "invalid feedback byte");
  return static_cast<Feedback>(v);
}

}  // namespace

void Engine::save_state(snapshot::Writer& w) const {
  // Defensive echo of the configuration facets the mutable state depends
  // on; load_state refuses a payload saved under a different shape.
  //
  // KEEP IN SYNC: CohortEngine materializes lockstep lanes by writing this
  // exact byte layout from its own lane state (sim/cohort_engine.cpp,
  // save_lane_state) — any field added, removed or reordered here must be
  // mirrored there, or lane detachment silently corrupts.
  w.u32(cfg_.n);
  w.u32(cfg_.bound_r);
  w.boolean(cfg_.keep_channel_history);
  w.boolean(cfg_.record_trace);
  w.boolean(cfg_.record_deliveries);
  w.boolean(cfg_.allow_control);

  for (const StationRuntime& s : stations_) {
    w.u64(s.ctx.queue_.size());
    for (const Packet& p : s.ctx.queue_) {
      w.u64(p.seq);
      w.u32(p.station);
      w.i64(p.injected_at);
      w.i64(p.cost);
    }
    w.i64(s.ctx.queue_cost_);
    snapshot::save_rng(w, s.ctx.rng_);
    w.u64(s.slot_index);
    w.i64(s.slot_begin);
    w.i64(s.slot_end);
    w.u8(static_cast<std::uint8_t>(s.action));
    s.protocol->save_state(w);
  }

  slot_policy_->save_state(w);
  w.boolean(injection_ != nullptr);
  if (injection_) injection_->save_state(w);

  ledger_.save_state(w);
  metrics_.save_state(w);

  const auto& slots = trace_.slots();
  w.u64(slots.size());
  for (const trace::SlotRecord& rec : slots) {
    w.u32(rec.station);
    w.u64(rec.index);
    w.i64(rec.begin);
    w.i64(rec.end);
    w.u8(static_cast<std::uint8_t>(rec.action));
    w.u8(static_cast<std::uint8_t>(rec.feedback));
  }

  w.u64(deliveries_.size());
  for (const DeliveryRecord& d : deliveries_) {
    w.u64(d.seq);
    w.u32(d.station);
    w.i64(d.injected_at);
    w.i64(d.declared_cost);
    w.i64(d.realized_cost);
    w.i64(d.delivered_at);
  }

  w.i64(now_);
  w.i64(next_injection_poll_);
  w.i64(last_injection_time_);
  w.u64(next_seq_);
  w.u32(last_successful_);
  w.u64(steps_since_prune_);
  w.u64(steps_since_checkpoint_);
  // Batched telemetry deltas ride along so a resumed engine flushes the
  // same residue; telemetry itself is outside the determinism contract.
  w.u64(pending_slots_);
  w.u64(pending_deliveries_);
  w.u64(pending_injections_);
  w.u64(pending_polls_skipped_);

  // Energy accounting tail, gated by the enabled flag: a disabled run
  // contributes one flag byte regardless of the configured costs, so the
  // energy-off snapshot bytes never depend on the cost vector.
  w.boolean(cfg_.energy.enabled);
  if (cfg_.energy.enabled) {
    w.u64(cfg_.energy.cost_transmit);
    w.u64(cfg_.energy.cost_listen);
    w.u64(cfg_.energy.cost_sleep);
    meter_.save_state(w);
  }
}

void Engine::load_state(snapshot::Reader& r) {
  if (r.u32() != cfg_.n) throw_mismatch("station count");
  if (r.u32() != cfg_.bound_r) throw_mismatch("asynchrony bound R");
  if (r.boolean() != cfg_.keep_channel_history)
    throw_mismatch("keep_channel_history setting");
  if (r.boolean() != cfg_.record_trace) throw_mismatch("record_trace setting");
  if (r.boolean() != cfg_.record_deliveries)
    throw_mismatch("record_deliveries setting");
  if (r.boolean() != cfg_.allow_control) throw_mismatch("allow_control model");

  for (StationRuntime& s : stations_) {
    const std::uint64_t qlen = r.u64();
    s.ctx.queue_.clear();
    for (std::uint64_t i = 0; i < qlen; ++i) {
      Packet p;
      p.seq = r.u64();
      p.station = r.u32();
      p.injected_at = r.i64();
      p.cost = r.i64();
      s.ctx.queue_.push_back(p);
    }
    s.ctx.queue_cost_ = r.i64();
    snapshot::load_rng(r, s.ctx.rng_);
    s.slot_index = r.u64();
    s.slot_begin = r.i64();
    s.slot_end = r.i64();
    s.action = read_action(r);
    s.protocol->load_state(r, s.ctx);
    // The heap's top order depends only on the (end, station) key set, so
    // re-keying every station reproduces the saved scheduler exactly.
    events_.update(s.ctx.id(), s.slot_end);
  }

  slot_policy_->load_state(r);
  const bool had_injection = r.boolean();
  if (had_injection != (injection_ != nullptr))
    throw_mismatch("injection adversary presence");
  if (injection_) injection_->load_state(r);

  ledger_.load_state(r);
  metrics_.load_state(r);

  const std::uint64_t trace_count = r.u64();
  trace_.clear();
  for (std::uint64_t i = 0; i < trace_count; ++i) {
    trace::SlotRecord rec;
    rec.station = r.u32();
    rec.index = r.u64();
    rec.begin = r.i64();
    rec.end = r.i64();
    rec.action = read_action(r);
    rec.feedback = read_feedback(r);
    trace_.record(rec);
  }

  const std::uint64_t delivery_count = r.u64();
  deliveries_.clear();
  for (std::uint64_t i = 0; i < delivery_count; ++i) {
    DeliveryRecord d;
    d.seq = r.u64();
    d.station = r.u32();
    d.injected_at = r.i64();
    d.declared_cost = r.i64();
    d.realized_cost = r.i64();
    d.delivered_at = r.i64();
    deliveries_.push_back(d);
  }

  now_ = r.i64();
  next_injection_poll_ = r.i64();
  last_injection_time_ = r.i64();
  next_seq_ = r.u64();
  last_successful_ = r.u32();
  steps_since_prune_ = r.u64();
  steps_since_checkpoint_ = r.u64();
  pending_slots_ = r.u64();
  pending_deliveries_ = r.u64();
  pending_injections_ = r.u64();
  pending_polls_skipped_ = r.u64();

  if (r.boolean() != cfg_.energy.enabled)
    throw_mismatch("energy accounting setting");
  if (cfg_.energy.enabled) {
    const std::uint64_t tx = r.u64();
    const std::uint64_t listen = r.u64();
    const std::uint64_t sleep = r.u64();
    if (tx != cfg_.energy.cost_transmit || listen != cfg_.energy.cost_listen ||
        sleep != cfg_.energy.cost_sleep)
      throw_mismatch("energy cost model");
    meter_.load_state(r);
  }
}

}  // namespace asyncmac::sim
