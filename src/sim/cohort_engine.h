// asyncmac/sim/cohort_engine.h
//
// Batched lockstep execution of K independent replicas — the engine under
// million-seed Monte Carlo sweeps (ROADMAP: "Batched Monte Carlo engine").
//
// A *cohort* is K replicas that share topology (n, R), protocol, slot
// policy and recording configuration but differ in seeds and injector
// parameters — exactly the shape of a seed-replicated grid cell in
// analysis::run_grid. When every station's slot length is fixed (the
// policy's fixed_length() is nonzero for all stations, e.g. the "sync",
// "max" and "perstation" adversaries) the slot-end event sequence is the
// SAME for every replica, so one scheduler heap and one per-station slot
// schedule drive all K lanes: each event is processed by a plain loop over
// the active lanes whose per-station protocol scalars live in
// structure-of-arrays form (station-major, lane-minor — the K lane values
// of one station are contiguous). That amortizes the heap, the event
// bookkeeping and every virtual dispatch of the scalar engine across K
// replicas; docs/PERFORMANCE.md has the measured speedups.
//
// The lockstep fast path currently lane-izes the CA-ARRoW automaton (the
// paper's collision-free workhorse protocol — the one the committed
// trajectory benches run). Everything per-lane that is not a hot scalar
// stays a real object with the scalar engine's exact semantics: the
// channel Ledger, the metrics Collector, trace/delivery recording and the
// live InjectionPolicy (any injection adversary works — polls go through
// a per-lane EngineView at the shared event times, under the same
// next_arrival_hint skip-ahead contract as the scalar engine).
//
// Determinism contract — byte-identity by construction: a lane's state is
// at all times exactly the state the scalar Engine would have after the
// same events, and save_lane_state() writes Engine::save_state's byte
// layout. Cohorts that cannot take the fast path (other protocols,
// variable-length slot policies, checkpoint sinks, mismatched lane
// configurations) fall back transparently to one scalar Engine per lane;
// lanes that hit a runtime slow path (a StopCondition predicate, or the
// caller asking for engine(k)) detach to a scalar Engine via the snapshot
// path and continue bit-for-bit. Tests pin byte-identity of lane
// snapshots against scalar runs across the golden corpus, generated
// scenarios and randomized K/seed sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"

namespace asyncmac::sim {

/// Everything needed to construct one lane's scalar Engine (the exact
/// argument list of the Engine constructor).
struct LaneMaterials {
  EngineConfig cfg;
  std::vector<std::unique_ptr<Protocol>> protocols;
  std::unique_ptr<SlotPolicy> slot_policy;
  std::unique_ptr<InjectionPolicy> injection;  ///< may be null
};

/// Pure factory for one lane's materials. MUST be callable repeatedly and
/// return independent, identically configured instances each time: the
/// cohort consumes one build at construction (to decide eligibility and
/// seed the lane) and builds again whenever the lane detaches to a scalar
/// Engine (the fresh engine is then overwritten via load_state).
using LaneBuilder = std::function<LaneMaterials()>;

class CohortEngine {
 public:
  /// One builder per lane; at least one lane. Decides the lockstep fast
  /// path for the whole cohort at construction (see lockstep()); cohorts
  /// that do not qualify hold one scalar Engine per lane instead and
  /// behave identically, just without the batching win.
  explicit CohortEngine(std::vector<LaneBuilder> builders);
  ~CohortEngine();

  CohortEngine(const CohortEngine&) = delete;
  CohortEngine& operator=(const CohortEngine&) = delete;

  std::size_t lanes() const noexcept;

  /// True when the cohort runs the batched SoA lockstep loop; false for
  /// the one-scalar-Engine-per-lane fallback.
  bool lockstep() const noexcept;

  /// True when a lockstep lane has left the shared schedule because its
  /// stop condition triggered (its state is frozen at that point; reading
  /// results needs no materialization). Always false for detached or
  /// fallback lanes — those are live scalar engines.
  bool retired(std::size_t lane) const;

  /// Advance every lane until its stop condition triggers (the broadcast
  /// overload applies one condition to all lanes). Mirrors Engine::run
  /// per lane: a lane's stop is evaluated before every one of its slot-end
  /// events, and its telemetry is flushed when it stops. Lanes with a
  /// StopCondition::predicate detach to scalar engines first (the
  /// predicate observes an Engine), as do previously retired lanes that
  /// are run again — the shared schedule has moved on without them.
  void run(const StopCondition& stop);
  void run(const std::vector<StopCondition>& stops);

  /// Per-lane results, O(1), valid in every lane state.
  const metrics::RunStats& stats(std::size_t lane) const;
  const channel::LedgerStats& channel_stats(std::size_t lane) const;
  /// Per-lane energy slot counts (all-zero unless cfg.energy.enabled).
  const energy::EnergyMeter& energy_meter(std::size_t lane) const;

  /// Serialize lane `lane` exactly as the equivalent scalar
  /// Engine::save_state would — THE byte-identity oracle (tests and
  /// verify::Campaign diff this against real scalar runs), and the
  /// transport detachment rides on.
  void save_lane_state(std::size_t lane, snapshot::Writer& w) const;

  /// Detach lane `lane` to a scalar Engine (built via the lane's builder,
  /// then overwritten with the lane snapshot) and return it. Idempotent —
  /// the engine is cached and subsequent run() calls advance it. The
  /// returned reference lives as long as the cohort.
  Engine& engine(std::size_t lane);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace asyncmac::sim
