// asyncmac/metrics/collector.h
//
// Event sink fed by the simulation engine. Pure accounting — no channel or
// protocol logic lives here, so the numbers it reports are independent of
// the machinery being measured.
#pragma once

#include "metrics/run_stats.h"
#include "snapshot/fwd.h"
#include "util/types.h"

namespace asyncmac::metrics {

class Collector {
 public:
  explicit Collector(std::uint32_t n);

  void on_injection(StationId station, Tick cost, Tick now);
  /// `realized` is the actual duration of the slot that delivered the
  /// packet; `declared_cost` and `injected_at` come from the packet.
  void on_delivery(StationId station, Tick declared_cost, Tick injected_at,
                   Tick realized, Tick now);
  /// Defined inline: this is the one collector call on the engine's
  /// innermost per-event path, and RunStats::total_slots must stay exact
  /// per step (StopCondition::max_total_slots reads it), so it cannot be
  /// batched like telemetry — it can only be made cheap.
  void on_slot_end(StationId station, SlotAction action) {
    ++stats_.total_slots;
    StationStats& s = stats_.station[station - 1];
    ++s.slots;
    switch (action) {
      case SlotAction::kListen:
        ++stats_.listen_slots;
        break;
      case SlotAction::kTransmitPacket:
        ++stats_.transmit_slots;
        ++s.transmit_slots;
        break;
      case SlotAction::kTransmitControl:
        ++stats_.transmit_slots;
        ++stats_.control_slots;
        ++s.transmit_slots;
        break;
    }
  }

  /// Batched slot accounting for the cohort lockstep path: numerically
  /// identical to `events` on_slot_end calls of which `listen` were
  /// kListen, `tx_packet` kTransmitPacket and `tx_control`
  /// kTransmitControl (events == listen + tx_packet + tx_control). The
  /// per-station halves arrive separately via on_station_slot_batch so
  /// the caller can keep its counters lane-major. The cohort engine folds
  /// these in before every stats() observation point, so RunStats stays
  /// per-step exact as far as any reader (StopCondition, snapshots,
  /// adaptive adversaries) can tell.
  void on_slot_batch(std::uint64_t events, std::uint64_t listen,
                     std::uint64_t tx_packet, std::uint64_t tx_control) {
    stats_.total_slots += events;
    stats_.listen_slots += listen;
    stats_.transmit_slots += tx_packet + tx_control;
    stats_.control_slots += tx_control;
  }
  void on_station_slot_batch(StationId station, std::uint64_t slots,
                             std::uint64_t transmit_slots) {
    StationStats& s = stats_.station[station - 1];
    s.slots += slots;
    s.transmit_slots += transmit_slots;
  }

  const RunStats& stats() const noexcept { return stats_; }

  /// Current total queue cost across all stations (ticks).
  Tick queued_cost() const noexcept { return stats_.queued_cost; }

  /// Checkpoint/resume: serialize/restore the complete RunStats, latency
  /// histogram included. load_state requires the collector to have been
  /// constructed for the same station count (SnapshotError::kMismatch).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  StationStats& st(StationId id);
  RunStats stats_;
};

}  // namespace asyncmac::metrics
