#include "metrics/collector.h"

#include <algorithm>

#include "util/check.h"

namespace asyncmac::metrics {

Collector::Collector(std::uint32_t n) { stats_.station.resize(n); }

StationStats& Collector::st(StationId id) {
  AM_CHECK(id >= 1 && id <= stats_.station.size());
  return stats_.station[id - 1];
}

void Collector::on_injection(StationId station, Tick cost, Tick now) {
  (void)now;
  AM_CHECK(cost > 0);
  ++stats_.injected_packets;
  stats_.injected_cost += cost;
  ++stats_.queued_packets;
  stats_.queued_cost += cost;
  stats_.max_queued_packets =
      std::max(stats_.max_queued_packets, stats_.queued_packets);
  stats_.max_queued_cost = std::max(stats_.max_queued_cost, stats_.queued_cost);

  auto& s = st(station);
  ++s.injected;
  ++s.queued;
  s.queued_cost += cost;
  s.max_queued = std::max(s.max_queued, s.queued);
  s.max_queued_cost = std::max(s.max_queued_cost, s.queued_cost);
}

void Collector::on_delivery(StationId station, Tick declared_cost,
                            Tick injected_at, Tick realized, Tick now) {
  ++stats_.delivered_packets;
  stats_.delivered_cost += declared_cost;
  stats_.realized_cost += realized;
  AM_CHECK(stats_.queued_packets > 0);
  --stats_.queued_packets;
  stats_.queued_cost -= declared_cost;
  stats_.latency.add(now - injected_at);

  auto& s = st(station);
  ++s.delivered;
  AM_CHECK(s.queued > 0);
  --s.queued;
  s.queued_cost -= declared_cost;
}

}  // namespace asyncmac::metrics
