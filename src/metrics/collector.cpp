#include "metrics/collector.h"

#include <algorithm>

#include "snapshot/io.h"
#include "util/check.h"

namespace asyncmac::metrics {

Collector::Collector(std::uint32_t n) { stats_.station.resize(n); }

StationStats& Collector::st(StationId id) {
  AM_CHECK(id >= 1 && id <= stats_.station.size());
  return stats_.station[id - 1];
}

void Collector::on_injection(StationId station, Tick cost, Tick now) {
  (void)now;
  AM_CHECK(cost > 0);
  ++stats_.injected_packets;
  stats_.injected_cost += cost;
  ++stats_.queued_packets;
  stats_.queued_cost += cost;
  stats_.max_queued_packets =
      std::max(stats_.max_queued_packets, stats_.queued_packets);
  stats_.max_queued_cost = std::max(stats_.max_queued_cost, stats_.queued_cost);

  auto& s = st(station);
  ++s.injected;
  ++s.queued;
  s.queued_cost += cost;
  s.max_queued = std::max(s.max_queued, s.queued);
  s.max_queued_cost = std::max(s.max_queued_cost, s.queued_cost);
}

void Collector::on_delivery(StationId station, Tick declared_cost,
                            Tick injected_at, Tick realized, Tick now) {
  ++stats_.delivered_packets;
  stats_.delivered_cost += declared_cost;
  stats_.realized_cost += realized;
  AM_CHECK(stats_.queued_packets > 0);
  --stats_.queued_packets;
  stats_.queued_cost -= declared_cost;
  stats_.latency.add(now - injected_at);

  auto& s = st(station);
  ++s.delivered;
  AM_CHECK(s.queued > 0);
  --s.queued;
  s.queued_cost -= declared_cost;
}

void Collector::save_state(snapshot::Writer& w) const {
  w.u64(stats_.injected_packets);
  w.i64(stats_.injected_cost);
  w.u64(stats_.delivered_packets);
  w.i64(stats_.delivered_cost);
  w.i64(stats_.realized_cost);
  w.u64(stats_.queued_packets);
  w.i64(stats_.queued_cost);
  w.u64(stats_.max_queued_packets);
  w.i64(stats_.max_queued_cost);
  w.u64(stats_.total_slots);
  w.u64(stats_.listen_slots);
  w.u64(stats_.transmit_slots);
  w.u64(stats_.control_slots);
  const util::Histogram::State h = stats_.latency.state();
  w.u64(h.buckets.size());
  for (std::uint64_t b : h.buckets) w.u64(b);
  w.u64(h.count);
  w.i64(h.sum.hi);
  w.u64(h.sum.lo);
  w.i64(h.min);
  w.i64(h.max);
  w.u64(stats_.station.size());
  for (const StationStats& s : stats_.station) {
    w.u64(s.slots);
    w.u64(s.transmit_slots);
    w.u64(s.injected);
    w.u64(s.delivered);
    w.u64(s.queued);
    w.i64(s.queued_cost);
    w.u64(s.max_queued);
    w.i64(s.max_queued_cost);
  }
}

void Collector::load_state(snapshot::Reader& r) {
  stats_.injected_packets = r.u64();
  stats_.injected_cost = r.i64();
  stats_.delivered_packets = r.u64();
  stats_.delivered_cost = r.i64();
  stats_.realized_cost = r.i64();
  stats_.queued_packets = r.u64();
  stats_.queued_cost = r.i64();
  stats_.max_queued_packets = r.u64();
  stats_.max_queued_cost = r.i64();
  stats_.total_slots = r.u64();
  stats_.listen_slots = r.u64();
  stats_.transmit_slots = r.u64();
  stats_.control_slots = r.u64();
  util::Histogram::State h;
  const std::uint64_t buckets = r.u64();
  h.buckets.reserve(static_cast<std::size_t>(buckets));
  for (std::uint64_t i = 0; i < buckets; ++i) h.buckets.push_back(r.u64());
  h.count = r.u64();
  h.sum.hi = r.i64();
  h.sum.lo = r.u64();
  h.min = r.i64();
  h.max = r.i64();
  stats_.latency.restore(std::move(h));
  const std::uint64_t n = r.u64();
  if (n != stats_.station.size())
    throw snapshot::SnapshotError(
        snapshot::ErrorKind::kMismatch,
        "collector station count differs from the snapshot's");
  for (StationStats& s : stats_.station) {
    s.slots = r.u64();
    s.transmit_slots = r.u64();
    s.injected = r.u64();
    s.delivered = r.u64();
    s.queued = r.u64();
    s.queued_cost = r.i64();
    s.max_queued = r.u64();
    s.max_queued_cost = r.i64();
  }
}

}  // namespace asyncmac::metrics
