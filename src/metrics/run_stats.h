// asyncmac/metrics/run_stats.h
//
// Aggregated measurements of one simulation run. Stability (the paper's
// central property) is judged on *packet cost* — Def. 1 measures the
// adversary's injections in units of the slot time that will eventually
// carry each packet — so the collector tracks queue occupancy both in
// packets and in cost ticks.
#pragma once

#include <cstdint>
#include <vector>

#include "util/histogram.h"
#include "util/types.h"

namespace asyncmac::metrics {

struct StationStats {
  std::uint64_t slots = 0;             ///< slots executed
  std::uint64_t transmit_slots = 0;    ///< slots spent transmitting
  std::uint64_t injected = 0;          ///< packets injected here
  std::uint64_t delivered = 0;         ///< packets delivered from here
  std::uint64_t queued = 0;            ///< current queue length
  Tick queued_cost = 0;                ///< current queue cost
  std::uint64_t max_queued = 0;        ///< high-water mark, packets
  Tick max_queued_cost = 0;            ///< high-water mark, cost
};

struct RunStats {
  // Packets.
  std::uint64_t injected_packets = 0;
  Tick injected_cost = 0;   ///< declared (Def. 1) cost at injection
  std::uint64_t delivered_packets = 0;
  Tick delivered_cost = 0;  ///< declared cost of delivered packets
  Tick realized_cost = 0;   ///< actual duration of the delivering slots

  // System-wide queue occupancy (current and high-water marks).
  std::uint64_t queued_packets = 0;
  Tick queued_cost = 0;
  std::uint64_t max_queued_packets = 0;
  Tick max_queued_cost = 0;

  // Channel usage.
  std::uint64_t total_slots = 0;
  std::uint64_t listen_slots = 0;
  std::uint64_t transmit_slots = 0;
  std::uint64_t control_slots = 0;

  // Delivery latency (injection -> end of delivering slot), in ticks.
  util::Histogram latency;

  std::vector<StationStats> station;  ///< indexed by StationId - 1
};

}  // namespace asyncmac::metrics
