// asyncmac/metrics/json.h
//
// JSON export of run statistics, for dashboards and scripted analysis of
// CLI/benchmark output. Hand-rolled (the values are all numbers and fixed
// keys, no escaping subtleties) to keep the library dependency-free.
#pragma once

#include <string>

#include "channel/ledger.h"
#include "energy/meter.h"
#include "metrics/run_stats.h"

namespace asyncmac::metrics {

/// Serialize a RunStats (+ optional channel stats) to a JSON object.
/// Times are reported in ticks; kTicksPerUnit is included so consumers
/// can convert. An energy block is emitted only when both `meter` and
/// `model` are passed and the model is enabled — callers without energy
/// accounting produce byte-identical JSON to builds predating it.
std::string to_json(const RunStats& stats,
                    const channel::LedgerStats* channel = nullptr,
                    bool include_stations = true,
                    const energy::EnergyMeter* meter = nullptr,
                    const energy::EnergyModel* model = nullptr);

}  // namespace asyncmac::metrics
