// asyncmac/metrics/json.h
//
// JSON export of run statistics, for dashboards and scripted analysis of
// CLI/benchmark output. Hand-rolled (the values are all numbers and fixed
// keys, no escaping subtleties) to keep the library dependency-free.
#pragma once

#include <string>

#include "channel/ledger.h"
#include "metrics/run_stats.h"

namespace asyncmac::metrics {

/// Serialize a RunStats (+ optional channel stats) to a JSON object.
/// Times are reported in ticks; kTicksPerUnit is included so consumers
/// can convert.
std::string to_json(const RunStats& stats,
                    const channel::LedgerStats* channel = nullptr,
                    bool include_stations = true);

}  // namespace asyncmac::metrics
