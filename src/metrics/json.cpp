#include "metrics/json.h"

#include <sstream>

namespace asyncmac::metrics {

namespace {

class JsonObject {
 public:
  explicit JsonObject(std::ostringstream& os, int indent = 0)
      : os_(os), indent_(indent) {
    os_ << "{";
  }
  ~JsonObject() {
    os_ << "\n" << std::string(static_cast<std::size_t>(indent_), ' ')
        << "}";
  }

  template <typename T>
  void field(const char* key, const T& value) {
    sep();
    os_ << '"' << key << "\": " << value;
  }

  void raw_field(const char* key, const std::string& value) {
    sep();
    os_ << '"' << key << "\": " << value;
  }

 private:
  void sep() {
    os_ << (first_ ? "\n" : ",\n")
        << std::string(static_cast<std::size_t>(indent_) + 2, ' ');
    first_ = false;
  }

  std::ostringstream& os_;
  int indent_;
  bool first_ = true;
};

std::string station_json(const StationStats& s, int indent) {
  std::ostringstream os;
  {
    JsonObject o(os, indent);
    o.field("slots", s.slots);
    o.field("transmit_slots", s.transmit_slots);
    o.field("injected", s.injected);
    o.field("delivered", s.delivered);
    o.field("queued", s.queued);
    o.field("queued_cost", s.queued_cost);
    o.field("max_queued", s.max_queued);
    o.field("max_queued_cost", s.max_queued_cost);
  }
  return os.str();
}

}  // namespace

std::string to_json(const RunStats& stats,
                    const channel::LedgerStats* channel,
                    bool include_stations,
                    const energy::EnergyMeter* meter,
                    const energy::EnergyModel* model) {
  std::ostringstream os;
  {
    JsonObject o(os);
    o.field("ticks_per_unit", kTicksPerUnit);
    o.field("injected_packets", stats.injected_packets);
    o.field("injected_cost", stats.injected_cost);
    o.field("delivered_packets", stats.delivered_packets);
    o.field("delivered_cost", stats.delivered_cost);
    o.field("realized_cost", stats.realized_cost);
    o.field("queued_packets", stats.queued_packets);
    o.field("queued_cost", stats.queued_cost);
    o.field("max_queued_packets", stats.max_queued_packets);
    o.field("max_queued_cost", stats.max_queued_cost);
    o.field("total_slots", stats.total_slots);
    o.field("listen_slots", stats.listen_slots);
    o.field("transmit_slots", stats.transmit_slots);
    o.field("control_slots", stats.control_slots);
    if (!stats.latency.empty()) {
      std::ostringstream lat;
      {
        JsonObject l(lat, 2);
        l.field("count", stats.latency.count());
        l.field("min", stats.latency.min());
        l.field("p50", stats.latency.quantile(0.5));
        l.field("p99", stats.latency.quantile(0.99));
        l.field("max", stats.latency.max());
      }
      o.raw_field("latency", lat.str());
    }
    if (channel != nullptr) {
      std::ostringstream ch;
      {
        JsonObject c(ch, 2);
        c.field("transmissions", channel->transmissions);
        c.field("successful", channel->successful);
        c.field("collided", channel->collided);
        c.field("control_transmissions", channel->control_transmissions);
        c.field("successful_packet_time", channel->successful_packet_time);
      }
      o.raw_field("channel", ch.str());
    }
    if (meter != nullptr && model != nullptr && model->enabled) {
      std::ostringstream en;
      {
        JsonObject e(en, 2);
        e.field("cost_transmit", model->cost_transmit);
        e.field("cost_listen", model->cost_listen);
        e.field("cost_sleep", model->cost_sleep);
        e.field("total_charge", meter->total_charge(*model));
        e.field("peak_station_charge", meter->peak_station_charge(*model));
        std::ostringstream arr;
        arr << "[";
        for (StationId i = 1; i <= meter->n(); ++i) {
          if (i > 1) arr << ", ";
          arr << meter->station_charge(*model, i);
        }
        arr << "]";
        e.raw_field("station_charges", arr.str());
      }
      o.raw_field("energy", en.str());
    }
    if (include_stations) {
      std::ostringstream arr;
      arr << "[";
      for (std::size_t i = 0; i < stats.station.size(); ++i) {
        if (i) arr << ",";
        arr << "\n    " << station_json(stats.station[i], 4);
      }
      arr << "\n  ]";
      o.raw_field("stations", arr.str());
    }
  }
  os << "\n";
  return os.str();
}

}  // namespace asyncmac::metrics
