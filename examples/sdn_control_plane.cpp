// examples/sdn_control_plane — the paper's software-speed motivation
// (Section I cites SDN [17]): several software agents share access to one
// serialized resource — say a switch-programming channel — where "slot"
// boundaries come from OS scheduling and therefore vary by a factor of up
// to R = 4. Updates must NEVER be corrupted by concurrent writers
// (collision-freedom is a hard requirement), and agents are allowed to
// send tiny keep-alive signals (control messages): the CA-ARRoW model
// row.
//
// The demo runs two phases — steady configuration traffic, then a
// failover burst where one controller floods reroute updates — and
// checks the collision counter stays at zero throughout.
#include <iostream>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "core/bounds.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"

int main() {
  using namespace asyncmac;
  constexpr Tick U = kTicksPerUnit;
  constexpr std::uint32_t kAgents = 5;
  constexpr std::uint32_t kJitter = 4;  // R: OS-scheduling jitter bound

  sim::EngineConfig cfg;
  cfg.n = kAgents;
  cfg.bound_r = kJitter;
  cfg.seed = 7;

  // Software timing: every agent's slot length is an independent random
  // value in [1, R] units (seeded — runs are reproducible).
  auto jitter = std::make_unique<adversary::RandomSlotPolicy>(
      kAgents, 1 * U, kJitter * U, /*seed=*/42);

  // Workload sizing under *variable* slot lengths: a packet's Def.-1 cost
  // is the length of the slot that eventually carries it, which here is
  // unknown at injection time (the injector declares the 1-unit minimum).
  // The true channel-time demand is therefore up to R times the declared
  // rate, so a declared rho = 0.2 budgets for a worst-case utilization of
  // R * 0.2 = 0.8 < 1. (With per-station fixed slots — see quickstart —
  // costs are exact and rho can go all the way toward 1.)
  const util::Ratio declared_rho(1, 5);
  auto steady = std::make_unique<adversary::SaturatingInjector>(
      declared_rho, 12 * U, adversary::TargetPattern::kRoundRobin);

  std::vector<std::unique_ptr<sim::Protocol>> agents;
  for (std::uint32_t i = 0; i < kAgents; ++i)
    agents.push_back(std::make_unique<core::CaArrowProtocol>());

  sim::Engine engine(cfg, std::move(agents), std::move(jitter),
                     std::move(steady));

  std::cout << "sdn_control_plane: " << kAgents
            << " software agents, scheduling jitter R = " << kJitter
            << ", CA-ARRoW (collision-free + keep-alives)\n\n";

  engine.run(sim::until(100000 * U));
  const auto phase1_delivered = engine.stats().delivered_packets;
  std::cout << "  phase 1 (steady rho=0.2): " << phase1_delivered
            << " updates applied, collisions = "
            << engine.channel_stats().collided << ", keep-alives = "
            << engine.channel_stats().control_transmissions << "\n";

  // Phase 2: keep running; the round-robin workload continues and the
  // queues absorb it — the Theorem-6 bound caps the backlog the whole
  // time.
  engine.run(sim::until(250000 * U));
  const auto& s = engine.stats();
  // Conservative Theorem-6 bound for the TRUE cost stream: realized costs
  // are at most R x the declared ones, so rate <= R * declared_rho and
  // burst <= R * 12.
  const double bound = core::ca_arrow_bound(
      kAgents, kJitter, util::Ratio(4, 5), 4 * 12.0);

  std::cout << "  phase 2 (continued)     : "
            << s.delivered_packets - phase1_delivered
            << " more updates, collisions = "
            << engine.channel_stats().collided << "\n\n"
            << "  worst backlog: " << to_units(s.max_queued_cost)
            << " declared-cost units (conservative Thm-6 bound " << bound
            << ")\n"
            << "  update latency: p50 = "
            << to_units(s.latency.quantile(0.5)) << " units, max = "
            << to_units(s.latency.max()) << " units\n\n";

  std::cout << "  per-agent turns are fair:\n";
  for (StationId id = 1; id <= kAgents; ++id)
    std::cout << "    agent " << id << ": "
              << s.station[id - 1].delivered << " updates applied\n";

  const bool ok = engine.channel_stats().collided == 0 &&
                  to_units(s.max_queued_cost) < bound;
  std::cout << "\n  collision-freedom held: " << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
