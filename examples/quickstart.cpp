// examples/quickstart — the smallest end-to-end use of the library:
//
//   1. pick a model (n stations, asynchrony bound R);
//   2. pick the adversaries (slot-length policy + packet workload);
//   3. give every station a protocol (here AO-ARRoW, the paper's
//      no-control-message algorithm);
//   4. run and read the metrics.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "core/ao_arrow.h"
#include "core/bounds.h"
#include "sim/engine.h"

int main() {
  using namespace asyncmac;
  constexpr Tick U = kTicksPerUnit;

  // Model: 4 stations, slot lengths adversarially chosen in [1, R] = [1, 2].
  sim::EngineConfig cfg;
  cfg.n = 4;
  cfg.bound_r = 2;

  // The adversary fixes each station's slot length (1, 2, 1, 2 units):
  // packet costs (Def. 1 of the paper) are then exact.
  auto slots = std::make_unique<adversary::PerStationSlotPolicy>(
      std::vector<Tick>{1 * U, 2 * U, 1 * U, 2 * U});

  // Leaky-bucket workload: rate rho = 0.8, burstiness 10 time units,
  // packets spread round-robin over the stations.
  const util::Ratio rho(8, 10);
  auto workload = std::make_unique<adversary::SaturatingInjector>(
      rho, 10 * U, adversary::TargetPattern::kRoundRobin);

  // One AO-ARRoW automaton per station.
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  for (std::uint32_t i = 0; i < cfg.n; ++i)
    protocols.push_back(std::make_unique<core::AoArrowProtocol>());

  sim::Engine engine(cfg, std::move(protocols), std::move(slots),
                     std::move(workload));

  // Simulate 100,000 time units.
  engine.run(sim::until(100000 * U));

  const auto& s = engine.stats();
  const auto bounds = core::arrow_bounds(cfg.n, cfg.bound_r, cfg.bound_r,
                                         rho, 10.0);
  std::cout << "AO-ARRoW on a bounded-asynchrony MAC (n=4, R=2, rho=0.8)\n"
            << "  injected packets : " << s.injected_packets << "\n"
            << "  delivered packets: " << s.delivered_packets << "\n"
            << "  still queued     : " << s.queued_packets << "\n"
            << "  max queue cost   : " << to_units(s.max_queued_cost)
            << " time units (Theorem 3 bound L = " << bounds.L << ")\n"
            << "  delivery latency : p50 = "
            << to_units(s.latency.quantile(0.5)) << " units, max = "
            << to_units(s.latency.max()) << " units\n"
            << "  collisions       : " << engine.channel_stats().collided
            << " (AO-ARRoW may collide; it never sends control messages: "
            << engine.channel_stats().control_transmissions << ")\n";

  return s.delivered_packets > 0 ? 0 : 1;
}
