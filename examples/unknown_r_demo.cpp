// examples/unknown_r_demo — the Section-VII open problem, live: stations
// that do NOT know the asynchrony bound R elect a leader anyway using the
// experimental AdaptiveAbs (doubling estimate). The demo runs the same
// contention with the bound known (plain ABS) and unknown, and then shows
// the adversarial flip side: under mirrored feedback the adaptive
// stations keep doubling forever — the estimate is a bet, not knowledge.
#include <iostream>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "core/abs.h"
#include "core/adaptive_abs.h"
#include "sim/engine.h"

namespace {

using namespace asyncmac;
constexpr Tick U = kTicksPerUnit;
constexpr std::uint32_t kN = 6;
constexpr std::uint32_t kTrueR = 3;  // the stations don't get to see this

template <typename P>
void run_election(const char* label) {
  sim::EngineConfig cfg;
  cfg.n = kN;
  cfg.bound_r = kTrueR;
  std::vector<Tick> lens;
  for (std::uint32_t i = 0; i < kN; ++i) lens.push_back((1 + i % kTrueR) * U);
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  for (std::uint32_t i = 0; i < kN; ++i) ps.push_back(std::make_unique<P>());
  std::vector<sim::Injection> msgs;
  for (StationId id = 1; id <= kN; ++id) msgs.push_back({0, id, U});
  sim::Engine e(cfg, std::move(ps),
                std::make_unique<adversary::PerStationSlotPolicy>(lens),
                std::make_unique<adversary::ScriptedInjector>(msgs));
  sim::StopCondition stop;
  stop.max_time = 1000000 * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now() + kTrueR * U));

  std::cout << label << ": leader elected at t = " << to_units(e.now())
            << " units\n";
  for (StationId id = 1; id <= kN; ++id) {
    if constexpr (std::is_same_v<P, core::AdaptiveAbsProtocol>) {
      const auto& p =
          dynamic_cast<const core::AdaptiveAbsProtocol&>(e.protocol(id));
      if (p.status() == core::AdaptiveAbsProtocol::Status::kWon)
        std::cout << "  winner: station " << id << " after "
                  << p.total_slots() << " slots, " << p.epochs()
                  << " epoch(s), final estimate R_est = " << p.r_estimate()
                  << " (true r = " << kTrueR << ")\n";
    } else {
      const auto* abs =
          dynamic_cast<const core::AbsProtocol&>(e.protocol(id)).automaton();
      if (abs && abs->outcome() == core::AbsAutomaton::Outcome::kWon)
        std::cout << "  winner: station " << id << " after " << abs->slots()
                  << " slots (knowing R = " << kTrueR << ")\n";
    }
  }
}

}  // namespace

int main() {
  std::cout << "unknown_r_demo: " << kN
            << " stations, adversarial slot stretching up to r = " << kTrueR
            << "\n\n";

  run_election<core::AbsProtocol>("ABS with the bound KNOWN");
  run_election<core::AdaptiveAbsProtocol>("AdaptiveAbs, bound UNKNOWN");

  // The flip side: mirrored feedback (listen -> silence, transmit ->
  // busy) can never be ruled out by a station that does not know R, so
  // the estimate keeps doubling without limit.
  std::cout << "\nUnder mirrored feedback (the Theorem-2 adversary's "
               "view), the estimate diverges:\n  ";
  core::AdaptiveAbsProtocol p;
  sim::StationContext ctx(1, kN, kTrueR, 1);
  SlotAction a = p.next_action(std::nullopt, ctx);
  std::uint32_t last_estimate = 0;
  for (int step = 0; step < 2000000 && p.r_estimate() <= 64; ++step) {
    if (p.r_estimate() != last_estimate) {
      std::cout << "R_est=" << p.r_estimate() << " ";
      last_estimate = p.r_estimate();
    }
    const sim::SlotResult mirrored{
        a, is_transmit(a) ? Feedback::kBusy : Feedback::kSilence, false};
    a = p.next_action(mirrored, ctx);
  }
  std::cout << "...\n\nKnowing R buys guaranteed constants; not knowing "
               "it is survivable on real schedules but unboundable in the "
               "worst case (the open problem the paper poses).\n";
  return 0;
}
