// examples/grid_report — the declarative experiment API: describe a
// parameter sweep once, get a uniform table and a CSV out. This is the
// programmatic counterpart of tools/asyncmac_cli for batch studies.
#include <iostream>

#include "analysis/experiment.h"

int main() {
  using namespace asyncmac;

  analysis::ExperimentSpec spec;
  spec.protocols = {"ao-arrow", "ca-arrow", "rrw", "aloha"};
  spec.station_counts = {4};
  spec.bounds_r = {1, 2};
  spec.rho_percents = {40, 80};
  spec.slot_policies = {"perstation"};
  spec.horizon_units = 60000;

  std::cout << "grid_report: " << spec.protocols.size()
            << " protocols x R in {1,2} x rho in {0.4, 0.8} "
               "(perstation slots, 60k units)\n\n";

  const auto records = analysis::run_grid(spec);
  std::cout << analysis::to_table(records);
  analysis::write_csv(records, "grid_report.csv");
  std::cout << "\n(rows with delivered frac << 1 are the unstable cells: "
               "RRW at R = 2, ALOHA at rho = 0.8 — written to "
               "grid_report.csv)\n";
  return records.empty() ? 1 : 0;
}
