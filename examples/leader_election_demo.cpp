// examples/leader_election_demo — a guided tour of ABS (Fig. 3 of the
// paper): five stations contend on an asynchronous channel; the demo
// renders the full schedule to scale (like the paper's Fig. 2), narrates
// which station survived which phase, and checks Theorem 1's O(R^2 log n)
// slot bound.
#include <iostream>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "core/abs.h"
#include "core/bounds.h"
#include "sim/engine.h"
#include "trace/renderer.h"

int main() {
  using namespace asyncmac;
  constexpr Tick U = kTicksPerUnit;
  constexpr std::uint32_t kStations = 5;
  constexpr std::uint32_t kR = 2;

  sim::EngineConfig cfg;
  cfg.n = kStations;
  cfg.bound_r = kR;
  cfg.record_trace = true;

  // Adversarial slot lengths: stations alternate 1- and 2-unit slots.
  std::vector<Tick> lens;
  for (std::uint32_t i = 0; i < kStations; ++i)
    lens.push_back((1 + i % kR) * U);
  auto policy =
      std::make_unique<adversary::PerStationSlotPolicy>(std::move(lens));

  // Every station has one message to transmit (the SST problem).
  std::vector<sim::Injection> script;
  for (StationId id = 1; id <= kStations; ++id)
    script.push_back({0, id, U});

  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  for (std::uint32_t i = 0; i < kStations; ++i)
    protocols.push_back(std::make_unique<core::AbsProtocol>());

  sim::Engine engine(
      cfg, std::move(protocols), std::move(policy),
      std::make_unique<adversary::ScriptedInjector>(std::move(script)));

  sim::StopCondition stop;
  stop.max_time = 100000 * U;
  stop.predicate = [](const sim::Engine& e) {
    return e.channel_stats().successful >= 1;
  };
  engine.run(stop);
  engine.run(sim::until(engine.now()));  // let the winner see its ack

  std::cout << "leader_election_demo: ABS with n = " << kStations
            << ", R = " << kR << "\n\n";
  std::cout << "Station IDs in binary (searched least-significant bit "
               "first; in each phase,\n0-bit stations listen 3R slots, "
               "1-bit stations 4R^2+3R, so 0-bits transmit\nfirst and "
               "silence the others):\n";
  for (StationId id = 1; id <= kStations; ++id) {
    std::cout << "  station " << id << " = ";
    for (int b = 2; b >= 0; --b) std::cout << ((id >> b) & 1);
    std::cout << "\n";
  }
  std::cout << "\n";

  StationId winner = 0;
  for (StationId id = 1; id <= kStations; ++id) {
    const auto* abs =
        dynamic_cast<const core::AbsProtocol&>(engine.protocol(id))
            .automaton();
    const char* outcome = "active";
    if (abs->outcome() == core::AbsAutomaton::Outcome::kWon) {
      outcome = "WON";
      winner = id;
    }
    if (abs->outcome() == core::AbsAutomaton::Outcome::kEliminated)
      outcome = "eliminated";
    std::cout << "  station " << id << ": " << outcome << " after "
              << abs->slots() << " slots (phase " << abs->phase() << ")\n";
  }

  std::cout << "\nSST solved at t = " << to_units(engine.now())
            << " time units; Theorem 1 bound: "
            << core::abs_slot_bound(kStations, kR) << " slots/station\n\n";

  std::cout << "Schedule (to scale — note the different slot widths):\n";
  trace::RenderOptions opt;
  opt.columns_per_unit = 4;
  std::cout << trace::render_schedule(engine.trace().slots(), opt);

  return winner != 0 ? 0 : 1;
}
