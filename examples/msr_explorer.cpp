// examples/msr_explorer — use the analysis library to answer the paper's
// headline question for your own configuration: "what injection rate can
// this MAC sustain?" Edit the constants, rebuild, run.
//
// The example compares AO-ARRoW against slotted ALOHA on the same channel
// and prints the measured Max Stable Rate of each, plus a backlog trace
// at a rate between the two — the regime where the deterministic
// protocol is stable and the randomized one has already collapsed.
#include <iostream>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/msr.h"
#include "baselines/aloha.h"
#include "core/ao_arrow.h"
#include "sim/engine.h"

namespace {

using namespace asyncmac;
constexpr Tick U = kTicksPerUnit;

// ---- edit me -------------------------------------------------------
constexpr std::uint32_t kStations = 4;
constexpr std::uint32_t kBoundR = 2;
// ---------------------------------------------------------------------

template <typename P>
analysis::RateEngineFactory factory() {
  return [](util::Ratio rho, std::uint64_t seed) {
    sim::EngineConfig cfg;
    cfg.n = kStations;
    cfg.bound_r = kBoundR;
    cfg.seed = seed;
    std::vector<Tick> lens;
    for (std::uint32_t i = 0; i < kStations; ++i)
      lens.push_back((1 + i % kBoundR) * U);
    std::vector<std::unique_ptr<sim::Protocol>> protocols;
    for (std::uint32_t i = 0; i < kStations; ++i)
      protocols.push_back(std::make_unique<P>());
    return std::make_unique<sim::Engine>(
        cfg, std::move(protocols),
        std::make_unique<adversary::PerStationSlotPolicy>(std::move(lens)),
        std::make_unique<adversary::SaturatingInjector>(
            rho, 10 * U, adversary::TargetPattern::kRoundRobin, 1,
            seed + 1));
  };
}

}  // namespace

int main() {
  analysis::MsrConfig cfg;
  cfg.probe.horizon = 120000 * U;
  cfg.seeds = 1;

  std::cout << "msr_explorer: n = " << kStations << ", R = " << kBoundR
            << ", round-robin leaky-bucket workload\n\n";

  const auto arrow = analysis::estimate_msr(factory<core::AoArrowProtocol>(),
                                            cfg);
  std::cout << "AO-ARRoW      measured MSR = " << arrow.msr_pct << "% ("
            << arrow.probes << " probes)\n";

  analysis::MsrConfig aloha_cfg = cfg;
  aloha_cfg.seeds = 3;  // randomized protocol: majority over seeds
  const auto aloha = analysis::estimate_msr(
      factory<baselines::SlottedAlohaProtocol>(), aloha_cfg);
  std::cout << "slotted ALOHA measured MSR = " << aloha.msr_pct << "% ("
            << aloha.probes << " probes)\n\n";

  // A rate between the two: ALOHA drowns, AO-ARRoW cruises.
  const int mid_pct = (arrow.msr_pct + aloha.msr_pct) / 2;
  std::cout << "Backlog at rho = " << mid_pct << "% over time:\n";
  std::cout << "  t (units) | AO-ARRoW backlog | ALOHA backlog (packets)\n";
  auto ao_engine = factory<core::AoArrowProtocol>()(
      util::Ratio(mid_pct, 100), 1);
  auto al_engine = factory<baselines::SlottedAlohaProtocol>()(
      util::Ratio(mid_pct, 100), 1);
  for (int chunk = 1; chunk <= 6; ++chunk) {
    const Tick t = chunk * 20000 * U;
    ao_engine->run(sim::until(t));
    al_engine->run(sim::until(t));
    std::cout << "  " << to_units(t) << " | "
              << ao_engine->stats().queued_packets << " | "
              << al_engine->stats().queued_packets << "\n";
  }
  std::cout << "\nAO-ARRoW's backlog plateaus; ALOHA's grows without "
               "bound — the deterministic stable-throughput advantage the "
               "paper establishes.\n";
  return 0;
}
