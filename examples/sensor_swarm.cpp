// examples/sensor_swarm — the paper's motivating scenario of weak devices
// that cannot afford tight clock synchronization (Section I cites sensor
// networks [13]): eight battery-powered sensors share one radio channel.
// Their cheap oscillators drift, so their "slots" stretch and shrink
// between 1x and 3x — exactly the bounded-asynchrony model with R = 3.
//
// Traffic is event-driven and bursty: long quiet stretches, then a burst
// of readings when something happens. AO-ARRoW fits the hardware budget
// because it never spends energy on control transmissions — only genuine
// readings are ever sent.
#include <iostream>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "core/ao_arrow.h"
#include "sim/engine.h"

int main() {
  using namespace asyncmac;
  constexpr Tick U = kTicksPerUnit;
  constexpr std::uint32_t kSensors = 8;
  constexpr std::uint32_t kDrift = 3;  // R: worst-case clock stretch

  sim::EngineConfig cfg;
  cfg.n = kSensors;
  cfg.bound_r = kDrift;
  cfg.seed = 2024;

  // Each sensor's oscillator wanders through a periodic drift pattern,
  // phase-shifted per sensor so no two sensors ever stay aligned.
  auto drift = std::make_unique<adversary::CyclicSlotPolicy>(
      std::vector<Tick>{1 * U, 2 * U, 3 * U, 2 * U, 1 * U, 3 * U},
      /*shift_per_station=*/true);

  // Event bursts: the bucket fills at a modest average rate (rho = 0.35)
  // but is emptied in dumps every ~2000 time units — a storm of readings
  // landing on all sensors at once.
  auto events = std::make_unique<adversary::BurstyInjector>(
      util::Ratio(35, 100), /*burst=*/60 * U, /*period=*/2000 * U,
      adversary::TargetPattern::kRoundRobin);

  std::vector<std::unique_ptr<sim::Protocol>> sensors;
  for (std::uint32_t i = 0; i < kSensors; ++i)
    sensors.push_back(std::make_unique<core::AoArrowProtocol>());

  sim::Engine engine(cfg, std::move(sensors), std::move(drift),
                     std::move(events));
  engine.run(sim::until(200000 * U));

  const auto& s = engine.stats();
  std::cout << "sensor_swarm: " << kSensors
            << " drifting sensors (R = " << kDrift << "), bursty events\n\n";
  std::cout << "  readings injected  : " << s.injected_packets << "\n"
            << "  readings delivered : " << s.delivered_packets << "\n"
            << "  backlog at the end : " << s.queued_packets << "\n"
            << "  worst backlog cost : " << to_units(s.max_queued_cost)
            << " time units\n"
            << "  control messages   : "
            << engine.channel_stats().control_transmissions
            << " (always 0: AO-ARRoW transmits only real readings)\n\n";

  std::cout << "  per-sensor deliveries (no sensor starves):\n";
  for (std::uint32_t i = 0; i < kSensors; ++i)
    std::cout << "    sensor " << i + 1 << ": "
              << s.station[i].delivered << " delivered, "
              << s.station[i].queued << " queued\n";

  std::cout << "\n  delivery latency: p50 = "
            << to_units(s.latency.quantile(0.5)) << " units, max = "
            << to_units(s.latency.max()) << " units\n";
  return s.queued_packets < 100 ? 0 : 1;
}
