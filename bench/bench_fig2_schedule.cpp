// bench_fig2_schedule — regenerates the paper's Fig. 2: a three-station
// transmission schedule on the synchronous channel (where the simple
// binary-search election succeeds within a few slots) next to an
// asynchronous execution of the same stations (where slot stretching
// delays the single successful transmission), rendered to scale.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/sync_binary_le.h"
#include "harness.h"
#include "trace/renderer.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

template <typename P>
sim::Engine make_sst_engine(std::uint32_t n, std::uint32_t R,
                            std::unique_ptr<sim::SlotPolicy> policy) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.record_trace = true;
  return sim::Engine(cfg, protocols<P>(n), std::move(policy), messages(n));
}

void run_and_render(const char* title, sim::Engine& e, Tick window) {
  sim::StopCondition stop;
  stop.max_time = 100000 * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now()));  // drain ties so the winner sees its ack
  std::cout << "---- " << title << " ----\n";
  std::cout << "SST solved at t = " << to_units(e.now())
            << " units; slots used (per station): ";
  for (StationId id = 1; id <= e.n(); ++id)
    std::cout << e.stats().station[id - 1].slots << " ";
  std::cout << "\n";
  trace::RenderOptions opt;
  opt.to = std::min(e.now(), window);
  opt.columns_per_unit = 6;
  std::cout << trace::render_schedule(e.trace().slots(), opt) << "\n";
}

void BM_SyncSstTrace(benchmark::State& state) {
  for (auto _ : state) {
    auto e = make_sst_engine<baselines::SyncBinaryLeProtocol>(3, 1,
                                                              sync_policy());
    sim::StopCondition stop;
    stop.predicate = [](const sim::Engine& eng) {
      return eng.channel_stats().successful >= 1;
    };
    e.run(stop);
    benchmark::DoNotOptimize(e.now());
  }
}
BENCHMARK(BM_SyncSstTrace);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_fig2_schedule — reproduces Fig. 2 (synchronous vs\n"
               "asynchronous schedules of three stations solving SST)\n\n";

  {
    // Left half of Fig. 2: synchronous execution, station 3 (binary 11:
    // the figure's i3) — here the classic one-slot-per-bit search solves
    // SST within three slots.
    auto e = make_sst_engine<baselines::SyncBinaryLeProtocol>(3, 1,
                                                              sync_policy());
    run_and_render("synchronous (R = 1), sync binary-search LE", e, 12 * U);
  }
  {
    // Right half: the same stations under bounded asynchrony; the naive
    // search is no longer safe, ABS (with its asymmetric thresholds)
    // needs more slots but still produces the single success.
    auto e = make_sst_engine<core::AbsProtocol>(3, 2,
                                                per_station_policy(3, 2));
    run_and_render("bounded asynchrony (R = 2), ABS", e, 60 * U);
  }
  {
    // ABS also runs (and is optimal up to constants) on the synchronous
    // channel — for direct comparison with the first panel.
    auto e = make_sst_engine<core::AbsProtocol>(3, 1, sync_policy());
    run_and_render("synchronous (R = 1), ABS", e, 30 * U);
  }

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
