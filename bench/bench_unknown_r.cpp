// bench_unknown_r — quantifies the experimental unknown-R extension
// (Section VII open problem): leader election when the asynchrony bound
// R is NOT known to the stations. AdaptiveAbs doubles its estimate on
// failure evidence and pays for it in slots; this bench compares it to
// ABS parameterized with the true bound across n and r, and reports the
// doubling penalty.
#include <benchmark/benchmark.h>

#include <iostream>

#include "adversary/mirror.h"
#include "core/adaptive_abs.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

struct Outcome {
  bool solved = false;
  std::uint32_t winners = 0;
  std::uint64_t worst_slots = 0;
  std::uint32_t max_epochs = 0;
  std::uint32_t winner_estimate = 0;
};

template <typename P>
Outcome run_sst(std::uint32_t n, std::uint32_t r) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = r;
  sim::Engine e(cfg, protocols<P>(n), per_station_policy(n, r), messages(n));
  sim::StopCondition stop;
  stop.max_time = static_cast<Tick>(400 * core::abs_slot_bound(n, r)) *
                  static_cast<Tick>(r) * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now() + static_cast<Tick>(r) * U));

  Outcome out;
  out.solved = e.channel_stats().successful >= 1;
  for (StationId id = 1; id <= n; ++id) {
    if constexpr (std::is_same_v<P, core::AdaptiveAbsProtocol>) {
      const auto& p =
          dynamic_cast<const core::AdaptiveAbsProtocol&>(e.protocol(id));
      out.worst_slots = std::max(out.worst_slots, p.total_slots());
      out.max_epochs = std::max(out.max_epochs, p.epochs());
      if (p.status() == core::AdaptiveAbsProtocol::Status::kWon) {
        ++out.winners;
        out.winner_estimate = p.r_estimate();
      }
    } else {
      const auto* abs =
          dynamic_cast<const core::AbsProtocol&>(e.protocol(id)).automaton();
      if (!abs) continue;
      out.worst_slots = std::max(out.worst_slots, abs->slots());
      if (abs->outcome() == core::AbsAutomaton::Outcome::kWon)
        ++out.winners;
    }
  }
  return out;
}

void print_comparison() {
  util::Table t({"n", "true r", "known-R ABS slots", "adaptive slots",
                 "penalty x", "epochs", "final estimate", "winners"});
  util::CsvWriter csv("bench_unknown_r.csv",
                      {"n", "r", "known_slots", "adaptive_slots", "epochs"});
  for (std::uint32_t r : {1u, 2u, 4u, 8u}) {
    for (std::uint32_t n : {4u, 16u, 64u}) {
      const auto known = run_sst<core::AbsProtocol>(n, r);
      const auto adaptive = run_sst<core::AdaptiveAbsProtocol>(n, r);
      t.row(n, r, known.worst_slots, adaptive.worst_slots,
            static_cast<double>(adaptive.worst_slots) /
                static_cast<double>(std::max<std::uint64_t>(
                    known.worst_slots, 1)),
            adaptive.max_epochs, adaptive.winner_estimate,
            adaptive.winners);
      csv.row(n, r, known.worst_slots, adaptive.worst_slots,
              adaptive.max_epochs);
      if (!adaptive.solved || adaptive.winners != 1)
        std::cout << "!! anomaly at n=" << n << " r=" << r << "\n";
    }
  }
  std::cout << "== Unknown-R leader election: AdaptiveAbs (doubling "
               "estimate) vs ABS with the true bound ==\n"
            << t.to_string()
            << "(measured finding: on benign fixed schedules the "
               "optimistic estimate usually wins its FIRST epoch with "
               "R_est = 1 — underestimated thresholds are often lucky, "
               "cheaper than the safe constants, but carry no guarantee; "
               "the adversarial side is below. Series in "
               "bench_unknown_r.csv)\n\n";
}

void print_adversarial_side() {
  // Against the Theorem-2 mirror adversary neither algorithm can win;
  // the adversary's forced phases quantify the worst case both face,
  // and AdaptiveAbs additionally keeps doubling its estimate there
  // (verified structurally in tests/test_extensions.cpp).
  util::Table t({"algorithm", "n", "r", "forced slots/station",
                 "mirror verified"});
  for (std::uint32_t r : {2u, 4u}) {
    adversary::ProtocolFactory known = [](StationId) {
      return std::make_unique<core::AbsProtocol>();
    };
    adversary::ProtocolFactory unknown = [](StationId) {
      return std::make_unique<core::AdaptiveAbsProtocol>();
    };
    adversary::MirrorRun mk(known, 64, r, r);
    adversary::MirrorRun mu(unknown, 64, r, r);
    const auto rk = mk.run();
    const auto ru = mu.run();
    t.row("ABS (known R)", 64, r, rk.slots_per_station, rk.verified_mirror);
    t.row("AdaptiveAbs", 64, r, ru.slots_per_station, ru.verified_mirror);
  }
  std::cout << "== Worst case: both algorithms under the Theorem-2 mirror "
               "adversary ==\n"
            << t.to_string()
            << "(the lower bound applies to unknown-R algorithms "
               "unchanged)\n";
}

void BM_AdaptiveElection(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto out = run_sst<core::AdaptiveAbsProtocol>(16, r);
    benchmark::DoNotOptimize(out.worst_slots);
  }
}
BENCHMARK(BM_AdaptiveElection)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_unknown_r — the Section VII open problem, measured "
               "(experimental extension)\n\n";
  print_comparison();
  print_adversarial_side();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
