// bench_msr — turns Table I's "Stable rho" column into measured numbers:
// the empirical Max Stable Rate (highest injection rate, in percent, that
// the stability probe classifies as stable) for every protocol in the
// repository, on the synchronous channel and under bounded asynchrony.
//
// Expected shape (the paper's claims):
//   * AO-ARRoW / CA-ARRoW: MSR near 100 for every R (any rho < 1);
//   * RRW / MBTF: near 100 at R = 1, collapsing under asynchrony;
//   * slotted ALOHA: far below (the randomized baseline the intro cites);
//   * BEB: in between — fine at light load, degrading under pressure.
#include <benchmark/benchmark.h>

#include <iostream>

#include "analysis/msr.h"
#include "baselines/aloha.h"
#include "baselines/beb.h"
#include "baselines/mbtf.h"
#include "baselines/rrw.h"
#include "baselines/silence_tdma.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;
using analysis::MsrConfig;

template <typename P>
analysis::RateEngineFactory rate_factory(std::uint32_t n, std::uint32_t R,
                                         bool synchronous) {
  return [=](util::Ratio rho, std::uint64_t seed) {
    sim::EngineConfig cfg;
    cfg.n = n;
    cfg.bound_r = R;
    cfg.seed = seed;
    return std::make_unique<sim::Engine>(
        cfg, protocols<P>(n),
        synchronous ? sync_policy() : per_station_policy(n, R),
        std::make_unique<adversary::SaturatingInjector>(
            rho, 8 * static_cast<Tick>(R) * U,
            adversary::TargetPattern::kRoundRobin, 1, seed + 1));
  };
}

MsrConfig msr_config(int seeds) {
  MsrConfig cfg;
  cfg.probe.horizon = 150000 * U;
  cfg.probe.chunks = 8;
  cfg.probe.ceiling = 20000 * U;
  cfg.seeds = seeds;
  cfg.jobs = 0;  // replicate the per-rho seed votes across all cores
  return cfg;
}

void print_msr_table() {
  util::Table t(
      {"protocol", "R", "measured MSR (%)", "paper / expectation"});
  util::CsvWriter csv("bench_msr.csv", {"protocol", "R", "msr_pct"});

  auto row = [&](const char* name, std::uint32_t R,
                 analysis::RateEngineFactory f, int seeds,
                 const char* expectation) {
    const auto res = analysis::estimate_msr(f, msr_config(seeds));
    t.row(name, R, res.msr_pct, expectation);
    csv.row(name, R, res.msr_pct);
  };

  const std::uint32_t n = 4;
  row("AO-ARRoW", 1, rate_factory<core::AoArrowProtocol>(n, 1, true), 1,
      "any rho < 1 (Thm 3)");
  row("AO-ARRoW", 2, rate_factory<core::AoArrowProtocol>(n, 2, false), 1,
      "any rho < 1 (Thm 3)");
  row("AO-ARRoW", 4, rate_factory<core::AoArrowProtocol>(n, 4, false), 1,
      "any rho < 1 (Thm 3)");
  row("CA-ARRoW", 1, rate_factory<core::CaArrowProtocol>(n, 1, true), 1,
      "any rho < 1 (Thm 6)");
  row("CA-ARRoW", 2, rate_factory<core::CaArrowProtocol>(n, 2, false), 1,
      "any rho < 1 (Thm 6)");
  row("CA-ARRoW", 4, rate_factory<core::CaArrowProtocol>(n, 4, false), 1,
      "any rho < 1 (Thm 6)");
  row("RRW", 1, rate_factory<baselines::RrwProtocol>(n, 1, true), 1,
      "any rho < 1 at R=1 [11]");
  row("RRW", 2, rate_factory<baselines::RrwProtocol>(n, 2, false), 1,
      "collapses for R > 1 (Thm 4)");
  row("MBTF", 1, rate_factory<baselines::MbtfProtocol>(n, 1, true), 1,
      "any rho < 1 at R=1 [6]");
  row("MBTF", 2, rate_factory<baselines::MbtfProtocol>(n, 2, false), 1,
      "collapses for R > 1");
  row("slotted ALOHA", 1,
      rate_factory<baselines::SlottedAlohaProtocol>(n, 1, true), 3,
      "low (randomized, ~1/e)");
  row("BEB", 1, rate_factory<baselines::BebProtocol>(n, 1, true), 3,
      "moderate (no worst-case bound)");
  row("silence-TDMA", 1,
      rate_factory<baselines::SilenceCountTdmaProtocol>(n, 1, true), 1,
      "positive but far below 1 (TDMA round ~ n)");

  std::cout << "== Measured Max Stable Rate (n = " << n
            << ", round-robin leaky-bucket workload, probe horizon 150k "
               "units) ==\n"
            << t.to_string()
            << "(the empirical rendering of Table I's stable-rho column; "
               "series in bench_msr.csv)\n\n";
}

void BM_MsrProbe(benchmark::State& state) {
  auto f = rate_factory<core::CaArrowProtocol>(4, 2, false);
  for (auto _ : state) {
    const bool ok = analysis::stable_at(f, util::Ratio(1, 2), msr_config(1));
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MsrProbe);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_msr — empirical Max Stable Rate for every protocol "
               "(Table I's stable-rho column)\n\n";
  print_msr_table();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
