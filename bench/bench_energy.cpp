// bench_energy — energy-vs-latency trade-offs of the MAC protocols
// under the per-slot energy model (energy/model.h, docs/ENERGY.md).
//
// Three sweeps, each an ASCII table plus a CSV series:
//   1. protocol x injection rate: energy per delivered packet against
//      delivery-latency tails (bench_energy.csv) — the headline
//      trade-off: contention protocols burn transmit slots on
//      collisions, deferral protocols burn listen slots waiting.
//   2. CSMA-LBT sensing-gap sweep (bench_energy_lbt.csv): the LBT deter
//      period M is the canonical energy/latency knob — longer gaps cut
//      collision (transmit) energy and pay in deferral latency.
//   3. k-restrained admission sweep (bench_energy_restrained.csv):
//      capacity-limited channels under both overflow semantics.
//
// Also writes BENCH_energy.json: the metering overhead trajectory
// (slots/sec with the meter off vs on), so future PRs can diff the cost
// of the observation-only billing path the way BENCH_engine.json tracks
// the hot loop.
//
// Modes:
//   bench_energy                 full budget (committed trajectory runs)
//   bench_energy --quick         short budget (CI perf-smoke)
//   ASYNCMAC_BENCH_BASELINE=f    merge baseline slots/sec from a previous
//                                BENCH_energy.json and report speedups
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/registry.h"
#include "baselines/csma_lbt.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

constexpr Tick kHorizon = 100000 * U;

/// The committed reference cost vector: transmitting is twice as dear as
/// listening, and a sleeping (empty-queue) station still pays a trickle.
const energy::EnergyModel kModel{true, 4, 2, 1};

struct EnergyRow {
  double per_delivery = 0;   ///< total charge / delivered packets
  double peak_station = 0;   ///< largest single-station charge
  double p50 = 0, p99 = 0;   ///< delivery latency (units)
  std::uint64_t delivered = 0;
  std::uint64_t collisions = 0;
};

EnergyRow run_energy(std::unique_ptr<sim::Engine> engine) {
  engine->run(sim::until(kHorizon));
  EnergyRow out;
  const auto& s = engine->stats();
  const auto& meter = engine->energy_meter();
  out.delivered = s.delivered_packets;
  out.collisions = engine->channel_stats().collided;
  if (out.delivered > 0)
    out.per_delivery =
        static_cast<double>(meter.total_charge(kModel)) /
        static_cast<double>(out.delivered);
  out.peak_station = static_cast<double>(meter.peak_station_charge(kModel));
  if (!s.latency.empty()) {
    out.p50 = to_units(s.latency.quantile(0.5));
    out.p99 = to_units(s.latency.quantile(0.99));
  }
  return out;
}

sim::EngineConfig energy_cfg(std::uint32_t n, std::uint32_t R,
                             channel::RestrainedSpec restrained = {}) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.seed = 1;
  cfg.energy = kModel;
  cfg.restrained = restrained;
  return cfg;
}

EnergyRow run_protocol(const std::string& protocol, std::uint32_t n,
                       std::uint32_t R, util::Ratio rho,
                       channel::RestrainedSpec restrained = {}) {
  auto engine = std::make_unique<sim::Engine>(
      energy_cfg(n, R, restrained), analysis::make_protocols(protocol, n),
      per_station_policy(n, R),
      saturating(rho, 8 * static_cast<Tick>(R) * U));
  return run_energy(std::move(engine));
}

void print_energy_vs_rho() {
  util::Table t({"protocol", "rho", "energy/delivery", "peak station",
                 "p50 (units)", "p99", "delivered"});
  util::CsvWriter csv("bench_energy.csv",
                      {"protocol", "rho", "energy_per_delivery",
                       "peak_station_charge", "p50", "p99", "delivered"});
  const std::vector<std::string> kProtocols = {
      "ao-arrow", "ca-arrow", "rrw", "aloha", "beb", "csma-lbt"};
  for (int pct : {30, 60, 90}) {
    const util::Ratio rho(pct, 100);
    for (const auto& p : kProtocols) {
      const EnergyRow row = run_protocol(p, 4, 2, rho);
      t.row(p, pct / 100.0, row.per_delivery, row.peak_station, row.p50,
            row.p99, row.delivered);
      csv.row(p, pct / 100.0, row.per_delivery, row.peak_station, row.p50,
              row.p99, row.delivered);
    }
  }
  std::cout << "== Energy per delivery vs rho (n=4, R=2, costs "
            << kModel.cost_transmit << ":" << kModel.cost_listen << ":"
            << kModel.cost_sleep << ") ==\n"
            << t.to_string()
            << "(collision-prone contenders pay in transmit slots, "
               "deferral schemes in listen slots; series in "
               "bench_energy.csv)\n\n";
}

void print_lbt_gap_sweep() {
  util::Table t({"gap M", "energy/delivery", "p99 (units)", "delivered",
                 "collisions"});
  util::CsvWriter csv("bench_energy_lbt.csv",
                      {"gap_slots", "energy_per_delivery", "p50", "p99",
                       "delivered", "collisions"});
  for (std::uint32_t gap : {0u, 1u, 2u, 4u, 8u}) {
    auto engine = std::make_unique<sim::Engine>(
        energy_cfg(4, 2),
        protocols<baselines::CsmaLbtProtocol>(4, gap, 4u, 1024u),
        per_station_policy(4, 2), saturating(util::Ratio(3, 5), 16 * U));
    const EnergyRow row = run_energy(std::move(engine));
    t.row(gap, row.per_delivery, row.p99, row.delivered, row.collisions);
    csv.row(gap, row.per_delivery, row.p50, row.p99, row.delivered,
            row.collisions);
  }
  std::cout << "== CSMA-LBT sensing-gap sweep (n=4, R=2, rho=0.6) ==\n"
            << t.to_string()
            << "(the LBT knob: longer deter periods trade collision "
               "energy for deferral latency; series in "
               "bench_energy_lbt.csv)\n\n";
}

void print_restrained_sweep() {
  util::Table t({"channel", "energy/delivery", "p99 (units)", "delivered",
                 "collisions"});
  util::CsvWriter csv("bench_energy_restrained.csv",
                      {"k", "mode", "energy_per_delivery", "p99",
                       "delivered", "collisions"});
  const auto point = [&](const std::string& label,
                         channel::RestrainedSpec spec) {
    const EnergyRow row =
        run_protocol("aloha", 4, 2, util::Ratio(7, 10), spec);
    t.row(label, row.per_delivery, row.p99, row.delivered, row.collisions);
    csv.row(spec.k, spec.enabled() ? (spec.jam ? "jam" : "reject") : "off",
            row.per_delivery, row.p99, row.delivered, row.collisions);
  };
  point("unrestrained", {});
  for (std::uint32_t k : {1u, 2u}) {
    for (const bool jam : {true, false}) {
      std::ostringstream label;
      label << "k=" << k << (jam ? " jam" : " reject");
      point(label.str(), {k, jam});
    }
  }
  std::cout << "== k-restrained channel (aloha, n=4, rho=0.7) ==\n"
            << t.to_string()
            << "(reject suppresses over-capacity transmissions at the "
               "radio — cheaper and cleaner than jamming them; series in "
               "bench_energy_restrained.csv)\n\n";
}

// ------------------------------------------------------------ trajectory

struct OverheadConfig {
  std::string name;
  std::uint32_t n = 4;
  bool metered = false;
};

std::string overhead_name(std::uint32_t n, bool metered) {
  std::ostringstream os;
  os << "n" << n << (metered ? "_metered" : "_unmetered");
  return os.str();
}

std::vector<OverheadConfig> overhead_configs() {
  std::vector<OverheadConfig> out;
  for (std::uint32_t n : {4u, 64u}) {
    for (bool metered : {false, true}) {
      out.push_back({overhead_name(n, metered), n, metered});
    }
  }
  return out;
}

double slots_per_sec(const OverheadConfig& c, std::uint64_t slot_budget) {
  const auto timed_run = [&](std::uint64_t slots) {
    sim::EngineConfig cfg;
    cfg.n = c.n;
    cfg.bound_r = 4;
    cfg.seed = 1;
    if (c.metered) cfg.energy = kModel;
    auto engine = std::make_unique<sim::Engine>(
        cfg, analysis::make_protocols("ca-arrow", c.n),
        per_station_policy(c.n, 4), saturating(util::Ratio(1, 2), 8 * U));
    sim::StopCondition stop;
    stop.max_total_slots = slots;
    const auto t0 = std::chrono::steady_clock::now();
    engine->run(stop);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    return static_cast<double>(engine->stats().total_slots) / sec;
  };
  timed_run(slot_budget / 8);  // warmup
  return min_of_n_rate([&] { return timed_run(slot_budget); });
}

void write_trajectory(bool quick) {
  const std::uint64_t budget = quick ? 200000 : 2000000;
  const auto cfgs = overhead_configs();
  std::map<std::string, double> baseline;
  if (const char* path = std::getenv("ASYNCMAC_BENCH_BASELINE");
      path && *path) {
    std::vector<std::string> expected;
    for (const auto& c : cfgs) expected.push_back(c.name);
    baseline = merge_baseline(path, "slots_per_sec", expected);
  }

  std::ofstream out("BENCH_energy.json");
  out << "{\n  \"bench\": \"energy_metering_overhead\",\n"
      << "  \"unit\": \"slots_per_sec\",\n"
      << "  \"protocol\": \"ca-arrow\",\n"
      << "  \"costs\": [" << kModel.cost_transmit << ", "
      << kModel.cost_listen << ", " << kModel.cost_sleep << "],\n"
      << "  \"slot_budget\": " << budget << ",\n  \"results\": [\n";
  std::map<std::string, double> rates;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const auto& c = cfgs[i];
    const double sps = slots_per_sec(c, budget);
    rates[c.name] = sps;
    out << "    {\"name\": \"" << c.name << "\",\n"
        << "     \"n\": " << c.n
        << ", \"metered\": " << (c.metered ? "true" : "false")
        << ", \"slots_per_sec\": " << sps;
    std::cout << "  " << c.name << ": " << static_cast<std::uint64_t>(sps)
              << " slots/sec";
    if (const auto it = baseline.find(c.name); it != baseline.end()) {
      out << ",\n     \"baseline_slots_per_sec\": " << it->second
          << ", \"speedup\": " << sps / it->second;
      std::cout << "  (baseline " << static_cast<std::uint64_t>(it->second)
                << ", speedup " << sps / it->second << "x)";
    }
    out << "}" << (i + 1 < cfgs.size() ? "," : "") << "\n";
    std::cout << "\n";
  }
  out << "  ],\n  \"metering_overhead_pct\": [\n";
  // The headline number: billing every completed slot must stay in the
  // single-digit percent range (it is one branch and one array bump on
  // the slot-end path).
  bool first = true;
  for (std::uint32_t n : {4u, 64u}) {
    const double off = rates[overhead_name(n, false)];
    const double on = rates[overhead_name(n, true)];
    const double pct = off > 0 ? 100.0 * (1.0 - on / off) : 0.0;
    if (!first) out << ",\n";
    first = false;
    out << "    {\"n\": " << n << ", \"overhead_pct\": " << pct << "}";
    std::cout << "  metering overhead n=" << n << ": " << pct << "%\n";
  }
  out << "\n  ]\n}\n";
  std::cout << "(trajectory written to BENCH_energy.json)\n\n";
}

// ------------------------------------------- google-benchmark registrations

void BM_MeteredRun(benchmark::State& state) {
  const bool metered = state.range(0) != 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.n = 4;
    cfg.bound_r = 2;
    cfg.seed = 1;
    if (metered) cfg.energy = kModel;
    auto engine = std::make_unique<sim::Engine>(
        cfg, analysis::make_protocols("ca-arrow", 4),
        per_station_policy(4, 2), saturating(util::Ratio(1, 2), 8 * U));
    sim::StopCondition stop;
    stop.max_total_slots = 100000;
    engine->run(stop);
    slots += engine->stats().total_slots;
  }
  state.counters["slots_per_sec"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeteredRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0)
      quick = true;
    else
      argv[out_argc++] = argv[i];
  }
  argc = out_argc;
  std::cout << "bench_energy — energy-vs-latency trade-offs"
            << (quick ? " (quick)" : "") << "\n\n";
  print_energy_vs_rho();
  print_lbt_gap_sweep();
  print_restrained_sweep();
  write_trajectory(quick);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
