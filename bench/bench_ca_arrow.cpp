// bench_ca_arrow — regenerates the Theorem-6 evaluation: CA-ARRoW's
// measured queue cost versus the closed-form (2nR^2(1+rho)+b)/(1-rho)
// bound, with the collision counter required to stay at zero in every
// cell, plus the AO-vs-CA contrast (collisions traded for control
// messages).
#include <benchmark/benchmark.h>

#include <iostream>

#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

constexpr Tick kHorizon = 400000 * U;

void print_rho_series() {
  util::Table t({"rho", "max queue (units)", "bound", "collided",
                 "control msgs", "delivered frac"});
  util::CsvWriter csv("bench_ca_arrow.csv",
                      {"rho", "max_queue", "bound", "collided",
                       "control_msgs", "delivered_frac"});
  for (int pct : {10, 30, 50, 70, 80, 90, 95}) {
    const util::Ratio rho(pct, 100);
    const Tick burst = 16 * U;
    const auto res =
        run_pt<core::CaArrowProtocol>(4, 2, rho, burst, kHorizon);
    const double bound = core::ca_arrow_bound(4, 2, rho, to_units(burst));
    t.row(pct / 100.0, res.max_queue_cost_units, bound, res.collisions,
          res.control_msgs, res.delivered_fraction);
    csv.row(pct / 100.0, res.max_queue_cost_units, bound, res.collisions,
            res.control_msgs, res.delivered_fraction);
  }
  std::cout << "== Theorem 6: CA-ARRoW queue cost vs rho (n=4, R=2) ==\n"
            << t.to_string()
            << "(collided must be 0 everywhere; series in "
               "bench_ca_arrow.csv)\n\n";
}

void print_nr_matrix() {
  util::Table t({"n", "R", "max queue (units)", "bound", "collided"});
  for (std::uint32_t n : {2u, 4u, 8u}) {
    for (std::uint32_t R : {1u, 2u, 4u}) {
      const util::Ratio rho(7, 10);
      const Tick burst = 8 * static_cast<Tick>(R) * U;
      const auto res = run_pt<core::CaArrowProtocol>(n, R, rho, burst,
                                                     kHorizon);
      t.row(n, R, res.max_queue_cost_units,
            core::ca_arrow_bound(n, R, rho, to_units(burst)),
            res.collisions);
    }
  }
  std::cout << "== CA-ARRoW at rho = 0.7 across (n, R) ==\n" << t.to_string()
            << "\n";
}

void print_ao_vs_ca() {
  util::Table t({"protocol", "rho", "max queue (units)", "collided",
                 "control msgs", "wasted frac"});
  for (int pct : {50, 90}) {
    const util::Ratio rho(pct, 100);
    const auto ao = run_pt<core::AoArrowProtocol>(4, 2, rho, 16 * U,
                                                  kHorizon);
    const auto ca = run_pt<core::CaArrowProtocol>(4, 2, rho, 16 * U,
                                                  kHorizon);
    t.row("AO-ARRoW", pct / 100.0, ao.max_queue_cost_units, ao.collisions,
          ao.control_msgs, ao.wasted_fraction);
    t.row("CA-ARRoW", pct / 100.0, ca.max_queue_cost_units, ca.collisions,
          ca.control_msgs, ca.wasted_fraction);
  }
  std::cout << "== The Table-I trade: collisions (AO) vs control messages "
               "(CA) ==\n"
            << t.to_string() << "\n";
}

void BM_CaArrowThroughput(benchmark::State& state) {
  const int pct = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto res = run_pt<core::CaArrowProtocol>(
        4, 2, util::Ratio(pct, 100), 16 * U, 50000 * U);
    benchmark::DoNotOptimize(res.delivered);
  }
}
BENCHMARK(BM_CaArrowThroughput)->Arg(50)->Arg(90);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_ca_arrow — reproduces the Theorem 6 evaluation\n\n";
  print_rho_series();
  print_nr_matrix();
  print_ao_vs_ca();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
