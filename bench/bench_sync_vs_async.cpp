// bench_sync_vs_async — regenerates the paper's Section I-A comparison
// (experiment X1 of DESIGN.md): for constant R the asynchronous bounds
// match the synchronous ones asymptotically, and the only stable-rate gap
// is at rho = 1; but protocols *designed* for the synchronous channel
// (RRW, MBTF, the synchronous binary search) break outright when R > 1,
// while ABS/AO/CA-ARRoW keep working and only pay a polynomial-in-R
// constant.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/mbtf.h"
#include "baselines/rrw.h"
#include "baselines/sync_binary_le.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

constexpr Tick kHorizon = 300000 * U;

// ---- leader election: slots vs R, normalized to the R = 1 line.

std::uint64_t abs_slots(std::uint32_t n, std::uint32_t R) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  sim::Engine e(cfg, protocols<core::AbsProtocol>(n),
                per_station_policy(n, R), messages(n));
  sim::StopCondition stop;
  stop.max_time = static_cast<Tick>(20 * core::abs_slot_bound(n, R)) *
                  static_cast<Tick>(R) * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now()));
  std::uint64_t worst = 0;
  for (StationId id = 1; id <= n; ++id) {
    const auto* abs =
        dynamic_cast<const core::AbsProtocol&>(e.protocol(id)).automaton();
    if (abs) worst = std::max(worst, abs->slots());
  }
  return worst;
}

void print_le_comparison() {
  const std::uint32_t n = 64;
  const std::uint64_t base = abs_slots(n, 1);
  util::Table t({"R", "ABS slots (n=64)", "vs R=1", "R^2 reference"});
  for (std::uint32_t R : {1u, 2u, 4u, 8u}) {
    const std::uint64_t s = abs_slots(n, R);
    t.row(R, s, static_cast<double>(s) / static_cast<double>(base),
          static_cast<double>(R) * R);
  }
  std::cout << "== Leader election under asynchrony: the R^2 price ==\n"
            << t.to_string()
            << "(for constant R the bounds match the synchronous channel "
               "asymptotically; the growth with R tracks R^2)\n\n";
}

// ---- PT: who survives R > 1.

void print_pt_comparison() {
  util::Table t({"protocol", "R", "max queue (units)", "collided",
                 "delivered frac", "verdict"});
  const util::Ratio rho(6, 10);
  const Tick burst = 12 * U;

  auto add = [&](const char* name, auto tag, std::uint32_t R) {
    using P = decltype(tag);
    const auto res = run_pt<P>(4, R, rho, burst, kHorizon, R == 1);
    const bool ok =
        res.collisions == 0 ? res.max_queue_cost_units < 2000
                            : false;
    const bool ao_ok = res.max_queue_cost_units < 2000;  // AO may collide
    const bool stable = std::string(name).find("AO") == 0 ? ao_ok : ok;
    t.row(name, R, res.max_queue_cost_units, res.collisions,
          res.delivered_fraction, stable ? "stable" : "BROKEN");
  };

  add("RRW", baselines::RrwProtocol{}, 1);
  add("RRW", baselines::RrwProtocol{}, 2);
  add("MBTF", baselines::MbtfProtocol{}, 1);
  add("MBTF", baselines::MbtfProtocol{}, 2);
  add("AO-ARRoW", core::AoArrowProtocol{}, 1);
  add("AO-ARRoW", core::AoArrowProtocol{}, 2);
  add("CA-ARRoW", core::CaArrowProtocol{}, 1);
  add("CA-ARRoW", core::CaArrowProtocol{}, 2);

  std::cout << "== Packet transmission at rho = 0.6: synchronous "
               "protocols vs ARRoW when R grows ==\n"
            << t.to_string()
            << "(the crossover: RRW/MBTF are fine at R=1 and break at "
               "R=2; ARRoW pays constants but stays stable)\n\n";
}

// ---- throughput-vs-R: the asynchrony overhead of the ARRoW protocols.

void print_overhead_series() {
  util::Table t({"R", "AO max stable-ish queue", "CA max queue",
                 "AO wasted frac", "CA wasted frac"});
  util::CsvWriter csv("bench_sync_vs_async.csv",
                      {"R", "ao_queue", "ca_queue", "ao_wasted",
                       "ca_wasted"});
  for (std::uint32_t R : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const util::Ratio rho(1, 2);
    const Tick burst = 8 * static_cast<Tick>(R) * U;
    const auto ao = run_pt<core::AoArrowProtocol>(4, R, rho, burst, kHorizon);
    const auto ca = run_pt<core::CaArrowProtocol>(4, R, rho, burst, kHorizon);
    t.row(R, ao.max_queue_cost_units, ca.max_queue_cost_units,
          ao.wasted_fraction, ca.wasted_fraction);
    csv.row(R, ao.max_queue_cost_units, ca.max_queue_cost_units,
            ao.wasted_fraction, ca.wasted_fraction);
  }
  std::cout << "== ARRoW overhead as R grows (rho = 0.5, n = 4) ==\n"
            << t.to_string() << "(series in bench_sync_vs_async.csv)\n\n";
}

void BM_RrwSync(benchmark::State& state) {
  for (auto _ : state) {
    const auto res = run_pt<baselines::RrwProtocol>(
        4, 1, util::Ratio(1, 2), 8 * U, 50000 * U, true);
    benchmark::DoNotOptimize(res.delivered);
  }
}
BENCHMARK(BM_RrwSync);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_sync_vs_async — the synchronous/asynchronous "
               "comparison of Section I-A\n\n";
  print_le_comparison();
  print_pt_comparison();
  print_overhead_series();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
