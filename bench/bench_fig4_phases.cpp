// bench_fig4_phases — regenerates the dynamics of the paper's Fig. 4:
// AO-ARRoW's execution decomposes into *phases* separated by long
// silences, and each phase into *subphases* of up to n leader elections
// with their associated withheld transmissions.
//
// The workload is deliberately intermittent (bursts separated by idle
// gaps longer than the long-silence threshold), so the run exhibits many
// phase boundaries. We report:
//   * the protocol's own Fig.-5 event counters per station — elections
//     entered/won, box-7 long-silence detections (phase boundaries) and
//     box-9 synchronizing transmissions;
//   * a channel-level timeline: for each burst period, the number of
//     elections (successful election transmissions), packets drained and
//     the longest silent gap — the subphase / long-silence structure.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kR = 2;

std::unique_ptr<sim::Engine> make_run(Tick burst_period, Tick /*horizon*/) {
  sim::EngineConfig cfg;
  cfg.n = kN;
  cfg.bound_r = kR;
  cfg.keep_channel_history = true;
  return std::make_unique<sim::Engine>(
      cfg, protocols<core::AoArrowProtocol>(kN), per_station_policy(kN, kR),
      std::make_unique<adversary::BurstyInjector>(
          util::Ratio(15, 100), /*burst=*/30 * U, burst_period,
          adversary::TargetPattern::kRoundRobin));
}

void print_phase_structure() {
  // The long-silence threshold at R = 2 is 52 observer slots (~104 time
  // units at worst); a burst period of 2000 units guarantees an idle gap
  // long enough that every burst opens a fresh phase.
  const Tick period = 2000 * U;
  const Tick horizon = 20000 * U;
  auto e = make_run(period, horizon);
  e->run(sim::until(horizon));

  std::cout << "long-silence threshold = "
            << core::long_silence_threshold(kR)
            << " observer slots; sync countdown = "
            << core::sync_countdown_slots(kR) << " slots\n\n";

  util::Table t({"station", "elections entered", "elections won",
                 "long silences seen (box 7)", "sync packets (box 9)"});
  for (StationId id = 1; id <= kN; ++id) {
    const auto& p =
        dynamic_cast<const core::AoArrowProtocol&>(e->protocol(id));
    t.row(id, p.elections_entered(), p.elections_won(), p.long_silences(),
          p.sync_transmissions());
  }
  std::cout << "== Per-station Fig.-5 event counters over "
            << to_units(horizon) / to_units(period) << " burst periods ==\n"
            << t.to_string() << "\n";

  // Channel-level timeline per burst period.
  std::vector<channel::Transmission> txs(e->ledger().full_history());
  for (const auto& tx : e->ledger().window()) txs.push_back(tx);
  std::sort(txs.begin(), txs.end(),
            [](const auto& a, const auto& b) { return a.begin < b.begin; });

  util::Table tl({"phase (burst #)", "t range (units)", "transmissions",
                  "successful", "collided", "longest silent gap (units)"});
  for (Tick p0 = 0; p0 < horizon; p0 += period) {
    const Tick p1 = p0 + period;
    std::uint64_t total = 0, good = 0, bad = 0;
    Tick gap = 0, last_end = p0;
    for (const auto& tx : txs) {
      if (tx.end <= p0 || tx.begin >= p1) continue;
      ++total;
      if (tx.successful) ++good;
      else ++bad;
      gap = std::max(gap, tx.begin - last_end);
      last_end = std::max(last_end, tx.end);
    }
    gap = std::max(gap, p1 - last_end);
    tl.row(static_cast<std::uint64_t>(p0 / period),
           std::to_string(static_cast<long>(to_units(p0))) + ".." +
               std::to_string(static_cast<long>(to_units(p1))),
           total, good, bad, to_units(gap));
  }
  std::cout << "== Channel timeline (each burst period = one Fig.-4 phase; "
               "the long silent gap at its end is the phase boundary) ==\n"
            << tl.to_string()
            << "(each phase shows a burst of elections + drains followed "
               "by a long silence, i.e. Fig. 4's phase/subphase "
               "structure)\n";
}

void BM_PhaseStructureRun(benchmark::State& state) {
  for (auto _ : state) {
    auto e = make_run(2000 * U, 0);
    e->run(sim::until(10000 * U));
    benchmark::DoNotOptimize(e->stats().delivered_packets);
  }
}
BENCHMARK(BM_PhaseStructureRun);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_fig4_phases — reproduces the phase/subphase "
               "structure of Fig. 4 (AO-ARRoW under intermittent load)\n\n";
  print_phase_structure();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
