// bench_engine — end-to-end slots/sec of the whole simulation engine.
//
// Every experiment in the reduction bottoms out in Engine::step, executed
// billions of times across grids, so the serial per-slot cost caps the
// science we can run. This harness times complete engine runs (protocol +
// slot policy + injection + ledger + metrics) across the load-bearing
// axes — station count, synchrony, injection pressure, telemetry — and
// writes BENCH_engine.json so every future PR has a hot-loop trajectory
// to diff (the same role BENCH_ledger.json plays for the ledger alone).
//
// Modes:
//   bench_engine                 full budget (committed trajectory runs)
//   bench_engine --quick         short budget (CI perf-smoke)
//   ASYNCMAC_BENCH_BASELINE=f    merge baseline slots/sec from a previous
//                                BENCH_engine.json and report speedups
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "core/ca_arrow.h"
#include "harness.h"
#include "sim/cohort_engine.h"
#include "snapshot/checkpoint.h"
#include "telemetry/registry.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

struct EngineBenchConfig {
  std::string name;
  std::uint32_t n = 2;
  std::uint32_t bound_r = 1;  ///< 1 = synchronous, else per-station async
  bool injections = false;
  bool telemetry = false;
};

std::string config_name(std::uint32_t n, std::uint32_t r, bool inj,
                        bool telemetry) {
  std::ostringstream os;
  os << "n" << n << "_" << (r == 1 ? "sync" : "async_r" + std::to_string(r))
     << (inj ? "_inj" : "_noinj") << (telemetry ? "_telemetry" : "");
  return os.str();
}

/// The benchmark matrix: n x {sync R=1, async R=4} x {with, without
/// injections}, telemetry off; plus telemetry-on variants at n=64 (the
/// acceptance config's size) to price the instrumentation itself.
std::vector<EngineBenchConfig> configs() {
  std::vector<EngineBenchConfig> out;
  for (std::uint32_t n : {2u, 8u, 64u, 512u}) {
    for (std::uint32_t r : {1u, 4u}) {
      for (bool inj : {false, true}) {
        out.push_back({config_name(n, r, inj, false), n, r, inj, false});
      }
    }
  }
  for (std::uint32_t r : {1u, 4u}) {
    for (bool inj : {false, true}) {
      out.push_back({config_name(64, r, inj, true), 64, r, inj, true});
    }
  }
  return out;
}

std::unique_ptr<sim::Engine> build_engine(const EngineBenchConfig& c,
                                          std::uint64_t prune_interval = 0,
                                          std::uint64_t ckpt_interval = 0,
                                          std::uint64_t* sink_ns = nullptr) {
  sim::EngineConfig cfg;
  cfg.n = c.n;
  cfg.bound_r = c.bound_r;
  cfg.seed = 1;
  if (prune_interval > 0) cfg.prune_interval = prune_interval;
  if (ckpt_interval > 0) {
    // Price the production autosave path end to end: serialize the
    // complete engine state, frame + CRC it, atomically write-rename into
    // the rotating retention set. A stale directory from the previous rep
    // would turn every write into a same-name replace (a ~4x slower ext4
    // path than fresh files), which no real autosaving run hits — so
    // start each rep clean. The RunSpec content is irrelevant to timing
    // (a few dozen bytes alongside the engine payload). When `sink_ns`
    // is given, each save's wall time accumulates into it.
    cfg.checkpoint_interval = ckpt_interval;
    std::filesystem::remove_all("bench_ckpt_tmp");
    auto saver = std::make_shared<snapshot::AutoSaver>(
        "bench_ckpt_tmp", snapshot::RunSpec{}, 2);
    cfg.checkpoint_sink = [saver, sink_ns](const sim::Engine& e) {
      const auto t0 = std::chrono::steady_clock::now();
      (*saver)(e);
      if (sink_ns)
        *sink_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };
  }
  return std::make_unique<sim::Engine>(
      cfg, protocols<core::CaArrowProtocol>(c.n),
      c.bound_r == 1 ? sync_policy() : per_station_policy(c.n, c.bound_r),
      c.injections ? saturating(util::Ratio(1, 2), 8 * U) : nullptr);
}

/// Run `slot_budget` slots and return slots/sec (one warmup run, then the
/// best of kBenchReps timed runs — engine construction excluded; see
/// min_of_n_rate for why best-of-N, not median).
double slots_per_sec(const EngineBenchConfig& c, std::uint64_t slot_budget,
                     std::uint64_t prune_interval = 0,
                     std::uint64_t ckpt_interval = 0) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(c.telemetry);
  const auto timed_run = [&](std::uint64_t slots) {
    auto engine = build_engine(c, prune_interval, ckpt_interval);
    sim::StopCondition stop;
    stop.max_total_slots = slots;
    const auto t0 = std::chrono::steady_clock::now();
    engine->run(stop);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    return static_cast<double>(engine->stats().total_slots) / sec;
  };
  timed_run(slot_budget / 8);  // warmup
  const double rate = min_of_n_rate([&] { return timed_run(slot_budget); });
  telemetry::set_enabled(was_enabled);
  return rate;
}

/// Checkpointed slots/sec plus the autosave overhead, measured directly:
/// wall time spent inside the checkpoint sink over wall time of the same
/// run. Comparing two separate runs (checkpointed vs not) cannot resolve
/// a few-percent effect on a shared VM — run-to-run rate noise is ±10% —
/// whereas the in-run ratio pairs every save against the run it slowed
/// down, so frequency drift and scheduler jitter cancel.
struct CkptPoint {
  double slots_per_sec = 0;
  double overhead_pct = 0;
};

CkptPoint checkpoint_point(const EngineBenchConfig& c,
                           std::uint64_t slot_budget, std::uint64_t interval) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(c.telemetry);
  // Best-of-N like min_of_n_rate, but hand-rolled so the reported
  // overhead_pct is the one *paired* with the fastest rep — mixing the
  // rate of one rep with the overhead of another would break the in-run
  // ratio this measurement exists for.
  CkptPoint best;
  for (int rep = -1; rep < kBenchReps; ++rep) {
    std::uint64_t sink_ns = 0;
    auto engine = build_engine(c, 0, interval, &sink_ns);
    sim::StopCondition stop;
    stop.max_total_slots = rep < 0 ? slot_budget / 8 : slot_budget;
    const auto t0 = std::chrono::steady_clock::now();
    engine->run(stop);
    const auto t1 = std::chrono::steady_clock::now();
    if (rep < 0) continue;  // warmup
    const double run_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    const double rate =
        static_cast<double>(engine->stats().total_slots) / (run_ns * 1e-9);
    if (rate > best.slots_per_sec)
      best = {rate, 100.0 * static_cast<double>(sink_ns) / run_ns};
  }
  telemetry::set_enabled(was_enabled);
  return best;
}

// ---------------------------------------------------------------- cohort

/// One lane's materials for the cohort bench: the exact engine the scalar
/// suite above builds (build_engine without prune/checkpoint overrides),
/// parameterized by seed so lanes differ the way grid seed replicas do.
sim::LaneMaterials cohort_materials(const EngineBenchConfig& c,
                                    std::uint64_t seed) {
  sim::LaneMaterials m;
  m.cfg.n = c.n;
  m.cfg.bound_r = c.bound_r;
  m.cfg.seed = seed;
  m.protocols = protocols<core::CaArrowProtocol>(c.n);
  m.slot_policy =
      c.bound_r == 1 ? sync_policy() : per_station_policy(c.n, c.bound_r);
  if (c.injections) m.injection = saturating(util::Ratio(1, 2), 8 * U, seed);
  return m;
}

struct CohortPoint {
  double cohort_slots_per_sec = 0;
  double scalar_slots_per_sec = 0;
  bool lockstep = false;
};

/// Aggregate slots/sec of K lockstep lanes vs the same K replicas run as
/// sequential scalar engines. The slot budget is split evenly across the
/// lanes so every K processes the same total number of slots; both sides
/// exclude construction (one warmup rep each, then the best of
/// kBenchReps — the two sides take their best independently, so the
/// speedup column compares two least-noise estimates).
CohortPoint cohort_point(const EngineBenchConfig& c, std::size_t k_lanes,
                         std::uint64_t slot_budget) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(false);
  const auto lane_seed = [](std::size_t k) { return 1 + k * 1000003ULL; };
  CohortPoint out;
  const auto secs = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
        .count();
  };

  const auto cohort_rep = [&](std::uint64_t budget) {
    sim::StopCondition stop;
    stop.max_total_slots = budget / k_lanes;
    std::vector<sim::LaneBuilder> builders;
    builders.reserve(k_lanes);
    for (std::size_t k = 0; k < k_lanes; ++k)
      builders.push_back(
          [c, seed = lane_seed(k)] { return cohort_materials(c, seed); });
    sim::CohortEngine cohort(std::move(builders));
    out.lockstep = cohort.lockstep();
    const auto t0 = std::chrono::steady_clock::now();
    cohort.run(stop);
    const auto t1 = std::chrono::steady_clock::now();
    std::uint64_t slots = 0;
    for (std::size_t k = 0; k < k_lanes; ++k)
      slots += cohort.stats(k).total_slots;
    return static_cast<double>(slots) / secs(t0, t1);
  };

  const auto scalar_rep = [&](std::uint64_t budget) {
    sim::StopCondition stop;
    stop.max_total_slots = budget / k_lanes;
    std::vector<std::unique_ptr<sim::Engine>> engines;
    engines.reserve(k_lanes);
    for (std::size_t k = 0; k < k_lanes; ++k) {
      sim::LaneMaterials m = cohort_materials(c, lane_seed(k));
      engines.push_back(std::make_unique<sim::Engine>(
          std::move(m.cfg), std::move(m.protocols), std::move(m.slot_policy),
          std::move(m.injection)));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& e : engines) e->run(stop);
    const auto t1 = std::chrono::steady_clock::now();
    std::uint64_t slots = 0;
    for (const auto& e : engines) slots += e->stats().total_slots;
    return static_cast<double>(slots) / secs(t0, t1);
  };

  cohort_rep(slot_budget / 8);  // warmup
  out.cohort_slots_per_sec =
      min_of_n_rate([&] { return cohort_rep(slot_budget); });
  scalar_rep(slot_budget / 8);  // warmup
  out.scalar_slots_per_sec =
      min_of_n_rate([&] { return scalar_rep(slot_budget); });
  telemetry::set_enabled(was_enabled);
  return out;
}

// ------------------------------------------------------------ trajectory

void write_trajectory(bool quick) {
  const std::uint64_t budget = quick ? 200000 : 2000000;
  const auto cfgs = configs();
  std::map<std::string, double> baseline;
  if (const char* path = std::getenv("ASYNCMAC_BENCH_BASELINE");
      path && *path) {
    // Warn-and-skip reconciliation (bench/harness.h): a baseline written
    // by an older or newer suite must not fail the whole bench.
    std::vector<std::string> expected;
    for (const auto& c : cfgs) expected.push_back(c.name);
    baseline = merge_baseline(path, "slots_per_sec", expected);
  }

  std::ofstream out("BENCH_engine.json");
  out << "{\n  \"bench\": \"engine_slots_per_sec\",\n"
      << "  \"unit\": \"slots_per_sec\",\n"
      << "  \"protocol\": \"ca-arrow\",\n"
      << "  \"slot_budget\": " << budget << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const auto& c = cfgs[i];
    const double sps = slots_per_sec(c, budget);
    out << "    {\"name\": \"" << c.name << "\",\n"
        << "     \"n\": " << c.n << ", \"r\": " << c.bound_r
        << ", \"injections\": " << (c.injections ? "true" : "false")
        << ", \"telemetry\": " << (c.telemetry ? "true" : "false")
        << ",\n     \"slots_per_sec\": " << sps;
    std::cout << "  " << c.name << ": " << static_cast<std::uint64_t>(sps)
              << " slots/sec";
    if (const auto it = baseline.find(c.name); it != baseline.end()) {
      out << ",\n     \"baseline_slots_per_sec\": " << it->second
          << ", \"speedup\": " << sps / it->second;
      std::cout << "  (baseline " << static_cast<std::uint64_t>(it->second)
                << ", speedup " << sps / it->second << "x)";
    }
    out << "}" << (i + 1 < cfgs.size() ? "," : "") << "\n";
    std::cout << "\n";
  }
  out << "  ],\n  \"cohort\": [\n";
  // The batched cohort engine (sim/cohort_engine.h): K seed replicas of
  // the acceptance-size config (n=64) advanced in lockstep vs the same K
  // run as sequential scalar engines. K=1 prices the lane indirection
  // alone; K in {4, 8, 16} is the Monte-Carlo regime run_grid batches at.
  // Acceptance: >= 3x aggregate slots/sec at K=8 on the noinj configs.
  {
    const std::size_t lane_counts[] = {1, 4, 8, 16};
    std::vector<std::string> lines;
    for (std::uint32_t r : {1u, 4u}) {
      for (bool inj : {false, true}) {
        EngineBenchConfig c{config_name(64, r, inj, false), 64, r, inj,
                            false};
        for (std::size_t k : lane_counts) {
          const CohortPoint p = cohort_point(c, k, budget);
          std::ostringstream line;
          line << "    {\"name\": \"" << c.name << "_k" << k
               << "\", \"lanes\": " << k << ", \"n\": " << c.n
               << ", \"r\": " << c.bound_r
               << ", \"injections\": " << (c.injections ? "true" : "false")
               << ",\n     \"lockstep\": " << (p.lockstep ? "true" : "false")
               << ", \"cohort_slots_per_sec\": " << p.cohort_slots_per_sec
               << ",\n     \"scalar_slots_per_sec\": "
               << p.scalar_slots_per_sec << ", \"speedup\": "
               << p.cohort_slots_per_sec / p.scalar_slots_per_sec << "}";
          lines.push_back(line.str());
          std::cout << "  cohort " << c.name << " k=" << k << ": "
                    << static_cast<std::uint64_t>(p.cohort_slots_per_sec)
                    << " slots/sec aggregate (scalar "
                    << static_cast<std::uint64_t>(p.scalar_slots_per_sec)
                    << ", speedup "
                    << p.cohort_slots_per_sec / p.scalar_slots_per_sec
                    << "x)\n";
        }
      }
    }
    for (std::size_t i = 0; i < lines.size(); ++i)
      out << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"prune_interval_sweep\": [\n";
  // Justify EngineConfig::prune_interval's default: sweep the cadence on
  // the acceptance config (n=64 async) with injections (the prune actually
  // has work to do only when transmissions fill the window).
  {
    EngineBenchConfig c{config_name(64, 4, true, false), 64, 4, true, false};
    const std::uint64_t intervals[] = {256, 1024, 4096, 16384, 65536};
    const std::size_t count = sizeof(intervals) / sizeof(intervals[0]);
    for (std::size_t i = 0; i < count; ++i) {
      const double sps = slots_per_sec(c, budget, intervals[i]);
      out << "    {\"prune_interval\": " << intervals[i]
          << ", \"slots_per_sec\": " << sps << "}"
          << (i + 1 < count ? "," : "") << "\n";
      std::cout << "  prune_interval " << intervals[i] << ": "
                << static_cast<std::uint64_t>(sps) << " slots/sec\n";
    }
  }
  out << "  ],\n  \"checkpoint_overhead\": [\n";
  // Acceptance gate for the snapshot subsystem (docs/CHECKPOINT.md):
  // autosaving every 65536 slots must cost <= 5% slots/sec on the n=64
  // configs. overhead_pct is the in-run sink-time fraction (see
  // checkpoint_point); the uncheckpointed rate is re-measured back to
  // back for the record, but the gate reads overhead_pct.
  {
    const std::uint64_t interval = 65536;
    // A few-percent effect needs enough autosaves to average over, and a
    // 200k-slot quick run holds only 3 — so this section always uses the
    // full budget (~30 saves, ~80 ms per timed rep).
    const std::uint64_t ck_budget = 2000000;
    std::vector<EngineBenchConfig> n64;
    for (const auto& c : cfgs)
      if (c.n == 64 && !c.telemetry) n64.push_back(c);
    for (std::size_t i = 0; i < n64.size(); ++i) {
      const auto& c = n64[i];
      const double base = slots_per_sec(c, ck_budget);
      const CkptPoint p = checkpoint_point(c, ck_budget, interval);
      out << "    {\"name\": \"" << c.name
          << "\", \"checkpoint_interval\": " << interval
          << ",\n     \"slots_per_sec\": " << p.slots_per_sec
          << ", \"uncheckpointed_slots_per_sec\": " << base
          << ", \"overhead_pct\": " << p.overhead_pct << "}"
          << (i + 1 < n64.size() ? "," : "") << "\n";
      std::cout << "  checkpoint@" << interval << " " << c.name << ": "
                << static_cast<std::uint64_t>(p.slots_per_sec)
                << " slots/sec (" << p.overhead_pct << "% overhead)\n";
    }
    std::filesystem::remove_all("bench_ckpt_tmp");
  }
  out << "  ]\n}\n";
  std::cout << "(trajectory written to BENCH_engine.json)\n\n";
}

// ------------------------------------------- google-benchmark registrations

void BM_EngineRun(benchmark::State& state) {
  EngineBenchConfig c;
  c.n = static_cast<std::uint32_t>(state.range(0));
  c.bound_r = static_cast<std::uint32_t>(state.range(1));
  c.injections = state.range(2) != 0;
  std::uint64_t slots = 0;
  for (auto _ : state) {
    auto engine = build_engine(c);
    sim::StopCondition stop;
    stop.max_total_slots = 100000;
    engine->run(stop);
    slots += engine->stats().total_slots;
  }
  state.counters["slots_per_sec"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineRun)
    ->Args({64, 4, 0})
    ->Args({64, 4, 1})
    ->Args({64, 1, 0})
    ->Args({512, 4, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  // Strip our own flag before google-benchmark sees argv.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0)
      quick = true;
    else
      argv[out_argc++] = argv[i];
  }
  argc = out_argc;
  std::cout << "bench_engine — end-to-end engine slots/sec"
            << (quick ? " (quick)" : "") << "\n\n";
  write_trajectory(quick);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
