// bench_instability — regenerates the Section-V impossibility results:
//
//  * Theorem 4: against collision-free no-control protocols the adversary
//    forces a collision or an arbitrarily large queue — shown against the
//    silence-count TDMA strawman and against RRW, for growing L.
//  * Theorem 5: at rho = 1 no protocol is stable — shown as queue-growth
//    time series for AO-ARRoW and CA-ARRoW under the drain-chasing
//    adversary, with the contrast line at rho = 0.95 staying flat.
#include <benchmark/benchmark.h>

#include <iostream>

#include "adversary/collision_forcer.h"
#include "baselines/rrw.h"
#include "baselines/silence_tdma.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

void print_theorem4() {
  util::Table t({"protocol", "L", "R", "outcome", "alpha", "beta",
                 "X (units)", "Y (units)", "collision time (units)"});
  auto run_case = [&](const char* name, adversary::ProtocolFactory f,
                      std::uint64_t L, std::uint32_t R) {
    const auto out =
        adversary::force_collision_or_overflow(f, util::Ratio(1, 2), L, R);
    const char* verdict = "no transmission";
    if (out.kind == adversary::CollisionForceOutcome::Kind::kCollisionForced)
      verdict = "COLLISION FORCED";
    if (out.kind == adversary::CollisionForceOutcome::Kind::kQueueOverflow)
      verdict = "QUEUE OVERFLOW";
    t.row(name, L, R, verdict, out.alpha, out.beta, to_units(out.x_ticks),
          to_units(out.y_ticks), to_units(out.collision_time));
  };

  adversary::ProtocolFactory tdma = [](StationId) {
    return std::make_unique<baselines::SilenceCountTdmaProtocol>();
  };
  adversary::ProtocolFactory rrw = [](StationId) {
    return std::make_unique<baselines::RrwProtocol>();
  };
  for (std::uint64_t L : {10u, 50u, 200u}) run_case("silence-TDMA", tdma, L, 2);
  run_case("silence-TDMA", tdma, 50, 4);
  run_case("silence-TDMA", tdma, 50, 8);
  for (std::uint64_t L : {10u, 50u}) run_case("RRW", rrw, L, 2);

  std::cout << "== Theorem 4: no-control + collision-free => no positive "
               "stable rate ==\n"
            << t.to_string()
            << "(every row must end in a forced collision or an overflow "
               "beyond L)\n\n";
}

void print_theorem5() {
  util::Table t({"protocol", "rho", "t (units)", "queued cost (units)"});
  util::CsvWriter csv("bench_instability.csv",
                      {"protocol", "rho", "t_units", "queue_units"});

  auto series = [&](const char* name, auto runner, util::Ratio rho) {
    sim::EngineConfig cfg;
    cfg.n = 2;
    cfg.bound_r = 2;
    auto e = runner(cfg, rho);
    for (int chunk = 1; chunk <= 5; ++chunk) {
      e->run(sim::until(chunk * 100000 * U));
      t.row(name, rho.to_double(), to_units(e->now()),
            to_units(e->stats().queued_cost));
      csv.row(name, rho.to_double(), to_units(e->now()),
              to_units(e->stats().queued_cost));
    }
  };

  auto make_ao = [](sim::EngineConfig cfg, util::Ratio rho) {
    return std::make_unique<sim::Engine>(
        cfg, protocols<core::AoArrowProtocol>(cfg.n),
        per_station_policy(cfg.n, cfg.bound_r),
        std::make_unique<adversary::DrainChasingInjector>(rho, 16 * U, 1,
                                                          2));
  };
  auto make_ca = [](sim::EngineConfig cfg, util::Ratio rho) {
    return std::make_unique<sim::Engine>(
        cfg, protocols<core::CaArrowProtocol>(cfg.n),
        per_station_policy(cfg.n, cfg.bound_r),
        std::make_unique<adversary::DrainChasingInjector>(rho, 16 * U, 1,
                                                          2));
  };

  series("AO-ARRoW", make_ao, util::Ratio::one());
  series("CA-ARRoW", make_ca, util::Ratio::one());
  series("CA-ARRoW", make_ca, util::Ratio(95, 100));

  std::cout << "== Theorem 5: rho = 1 is unstable for every protocol ==\n"
            << t.to_string()
            << "(rho=1 series must grow with t; the rho=0.95 contrast "
               "stays flat; series in bench_instability.csv)\n\n";
}

void BM_CollisionForcer(benchmark::State& state) {
  adversary::ProtocolFactory tdma = [](StationId) {
    return std::make_unique<baselines::SilenceCountTdmaProtocol>();
  };
  for (auto _ : state) {
    const auto out = adversary::force_collision_or_overflow(
        tdma, util::Ratio(1, 2), static_cast<std::uint64_t>(state.range(0)),
        2);
    benchmark::DoNotOptimize(out.collisions);
  }
}
BENCHMARK(BM_CollisionForcer)->Arg(10)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_instability — reproduces the Section V "
               "impossibility results (Theorems 4 and 5)\n\n";
  print_theorem4();
  print_theorem5();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
