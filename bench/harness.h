// bench/harness.h
//
// Shared construction and reporting helpers for the benchmark binaries.
// Each bench binary regenerates one of the paper's artifacts (Table I, a
// theorem's sweep, or a figure) as an ASCII table plus a CSV file, and
// additionally registers google-benchmark timings of the underlying
// simulations.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "core/abs.h"
#include "core/ao_arrow.h"
#include "core/bounds.h"
#include "core/ca_arrow.h"
#include "sim/engine.h"
#include "telemetry/jsonl.h"
#include "telemetry/registry.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace asyncmac::bench {

inline constexpr Tick U = kTicksPerUnit;

/// Opt-in telemetry for the bench binaries: exporting to the JSONL path
/// named by ASYNCMAC_TELEMETRY (if set) the first time any harness run
/// executes. Bench binaries have no flag plumbing of their own
/// (google-benchmark owns argv), so the environment is the switch.
inline void maybe_init_telemetry() {
  static const bool done = [] {
    if (const char* path = std::getenv("ASYNCMAC_TELEMETRY");
        path && *path) {
      telemetry::enable_to_file(path);
      telemetry::emit("bench.telemetry_enabled", {{"path", std::string(path)}});
    }
    return true;
  }();
  (void)done;
}

/// Minimal extraction of {"name": ..., "<unit_key>": ...} pairs from a
/// previous BENCH_*.json trajectory (schema owned by the bench binaries,
/// so a flat line scan is enough — no general JSON parser needed here).
inline std::map<std::string, double> load_baseline(const std::string& path,
                                                   const std::string& unit_key) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) return out;
  const std::string key = "\"" + unit_key + "\": ";
  std::string line;
  std::string name;
  while (std::getline(in, line)) {
    const auto name_pos = line.find("\"name\": \"");
    if (name_pos != std::string::npos) {
      const auto start = name_pos + 9;
      name = line.substr(start, line.find('"', start) - start);
    }
    const auto val_pos = line.find(key);
    if (val_pos != std::string::npos && !name.empty()) {
      out[name] = std::strtod(line.c_str() + val_pos + key.size(), nullptr);
      name.clear();
    }
  }
  return out;
}

/// Result of reconciling a loaded baseline against the config names the
/// current suite is about to run (see reconcile_baseline).
struct BaselineReconciliation {
  /// Baseline entries whose names the current suite also runs — the only
  /// ones a speedup column may use.
  std::map<std::string, double> usable;
  /// Expected configs the baseline lacks (suite gained configs since the
  /// baseline was written); they get no speedup, in expected order.
  std::vector<std::string> missing;
  /// Baseline names the suite no longer runs (suite dropped or renamed
  /// configs); their values are discarded, in baseline (sorted) order.
  std::vector<std::string> stray;
};

/// Pure per-config reconciliation of a baseline against the expected
/// config set: keep exactly the overlapping names, report adds/removes.
/// Config-set mismatches (a baseline from an older or newer suite) must
/// never fail the whole bench — callers warn about missing/stray and run
/// with the usable overlap. Unit-tested in tests/test_bench_harness.cpp.
inline BaselineReconciliation reconcile_baseline(
    std::map<std::string, double> raw,
    const std::vector<std::string>& expected) {
  BaselineReconciliation out;
  for (const auto& name : expected) {
    if (const auto it = raw.find(name); it != raw.end()) {
      out.usable.emplace(name, it->second);
      raw.erase(it);
    } else {
      out.missing.push_back(name);
    }
  }
  for (const auto& stray : raw) out.stray.push_back(stray.first);
  return out;
}

/// Load a baseline trajectory and reconcile it against the configs the
/// current suite is about to run, warning per config on mismatches:
/// stale names are dropped, missing names simply get no speedup column.
/// Returns only the usable entries.
inline std::map<std::string, double> merge_baseline(
    const std::string& path, const std::string& unit_key,
    const std::vector<std::string>& expected) {
  std::map<std::string, double> raw = load_baseline(path, unit_key);
  if (raw.empty()) {
    std::cerr << "warning: baseline " << path << " has no " << unit_key
              << " entries; continuing without speedups\n";
    return raw;
  }
  BaselineReconciliation rec = reconcile_baseline(std::move(raw), expected);
  for (const auto& name : rec.missing)
    std::cerr << "warning: baseline " << path << " lacks config \"" << name
              << "\" (older suite?); skipping its speedup\n";
  for (const auto& name : rec.stray)
    std::cerr << "warning: baseline " << path << " names unknown config \""
              << name << "\"; skipping it\n";
  return std::move(rec.usable);
}

/// Default timed repetitions per bench point (after the warmup rep).
inline constexpr int kBenchReps = 3;

/// Best-of-N repetition: call `fn` — one full timed repetition returning
/// a rate such as slots/sec — `reps` times and return the fastest.
/// Minimum-of-N wall time is maximum-of-N rate, and the minimum time is
/// the least-noise estimate on a shared machine: interference only ever
/// *adds* time, so the fastest rep is the one closest to the true cost.
/// A median still wanders when two of three reps hit scheduler jitter,
/// which is exactly the trajectory-file noise this exists to stop.
/// Callers run their own warmup rep first (typically at a reduced
/// budget) so construction and cold caches never count against rep one.
/// Unit-tested in tests/test_bench_harness.cpp.
template <typename F>
double min_of_n_rate(F&& fn, int reps = kBenchReps) {
  double best = 0;
  for (int i = 0; i < reps; ++i) best = std::max(best, fn());
  return best;
}

/// One protocol instance per station, all of type T.
template <typename T, typename... Args>
std::vector<std::unique_ptr<sim::Protocol>> protocols(std::uint32_t n,
                                                      Args&&... args) {
  std::vector<std::unique_ptr<sim::Protocol>> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(std::make_unique<T>(args...));
  return out;
}

/// The canonical asynchronous slot policy for stability benches: each
/// station's slots fixed at 1 + (id-1) mod R units (exact Def.-1 costs).
inline std::unique_ptr<sim::SlotPolicy> per_station_policy(std::uint32_t n,
                                                           std::uint32_t R) {
  std::vector<Tick> lens(n);
  for (std::uint32_t i = 0; i < n; ++i) lens[i] = (1 + (i % R)) * U;
  return std::make_unique<adversary::PerStationSlotPolicy>(std::move(lens));
}

inline std::unique_ptr<sim::SlotPolicy> sync_policy() {
  return std::make_unique<adversary::UniformSlotPolicy>(U);
}

/// Round-robin bucket-saturating workload at rate rho with burst b.
inline std::unique_ptr<sim::InjectionPolicy> saturating(
    util::Ratio rho, Tick burst, std::uint64_t seed = 1) {
  return std::make_unique<adversary::SaturatingInjector>(
      rho, burst, adversary::TargetPattern::kRoundRobin, 1, seed);
}

/// One SST message per participating station at time 0.
inline std::unique_ptr<sim::InjectionPolicy> messages(std::uint32_t n) {
  std::vector<sim::Injection> script;
  for (StationId s = 1; s <= n; ++s) script.push_back({0, s, U});
  return std::make_unique<adversary::ScriptedInjector>(std::move(script));
}

/// Outcome of a packet-transmission (PT) stability run.
struct PtResult {
  double max_queue_cost_units = 0;  ///< high-water total queue cost
  double final_queue_cost_units = 0;
  std::uint64_t delivered = 0;
  std::uint64_t injected = 0;
  std::uint64_t collisions = 0;
  std::uint64_t control_msgs = 0;
  double delivered_fraction = 0;
  double wasted_fraction = 0;  ///< Def. 2: time with no successful packet tx
};

template <typename P>
PtResult run_pt(std::uint32_t n, std::uint32_t R, util::Ratio rho, Tick burst,
                Tick horizon, bool synchronous = false,
                std::unique_ptr<sim::InjectionPolicy> injector = nullptr,
                std::uint64_t seed = 1) {
  maybe_init_telemetry();
  static auto& pt_runs =
      telemetry::Registry::global().counter("bench.pt_runs");
  static auto& pt_timer =
      telemetry::Registry::global().timer("bench.pt_run_ns");
  const telemetry::ScopeTimer scope(pt_timer);
  pt_runs.add();
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  cfg.seed = seed;
  auto engine = std::make_unique<sim::Engine>(
      cfg, protocols<P>(n),
      synchronous ? sync_policy() : per_station_policy(n, R),
      injector ? std::move(injector) : saturating(rho, burst, seed));
  engine->run(sim::until(horizon));

  PtResult out;
  const auto& s = engine->stats();
  out.max_queue_cost_units = to_units(s.max_queued_cost);
  out.final_queue_cost_units = to_units(s.queued_cost);
  out.delivered = s.delivered_packets;
  out.injected = s.injected_packets;
  out.collisions = engine->channel_stats().collided;
  out.control_msgs = engine->channel_stats().control_transmissions;
  out.delivered_fraction =
      s.injected_packets
          ? static_cast<double>(s.delivered_packets) /
                static_cast<double>(s.injected_packets)
          : 1.0;
  out.wasted_fraction =
      1.0 - to_units(engine->channel_stats().successful_packet_time) /
                to_units(engine->now());
  return out;
}

/// Replicate a seed-parameterized run across `seeds` derived seeds on
/// `jobs` workers (0 = all cores, 1 = serial); results come back in seed
/// order regardless of jobs. `fn` must be a pure function of its seed —
/// each invocation builds and runs its own Engine.
template <typename F>
auto replicate_seeds(int seeds, std::uint64_t base_seed, unsigned jobs,
                     F&& fn) {
  maybe_init_telemetry();
  using R = decltype(fn(std::uint64_t{}));
  std::vector<R> out(static_cast<std::size_t>(seeds));
  util::parallel_for(jobs, out.size(), [&](std::size_t i) {
    out[i] = fn(base_seed + i * 1000003ULL);
  });
  return out;
}

/// Outcome of an SST run (ABS or a baseline leader election).
struct SstResult {
  bool solved = false;
  std::uint32_t winners = 0;
  std::uint64_t max_slots = 0;  ///< max slots any participant spent
  double solved_at_units = 0;
};

}  // namespace asyncmac::bench
