// bench_abs_sst — regenerates the Theorem-1 series: ABS solves SST in
// O(R^2 log n) slots. Sweeps n (log axis) for R in {1, 2, 4, 8} under the
// harshest fixed slot policy and reports measured worst-case slots next
// to the closed-form bound, plus the slots/(R^2 log2 n) ratio, which
// should stay O(1) across the sweep if the theorem's shape holds.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "baselines/listen.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

struct Measured {
  bool solved = false;
  std::uint64_t max_slots = 0;
  double time_units = 0;
};

Measured run_abs(std::uint32_t n, std::uint32_t R,
                 const std::string& flavor) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  std::unique_ptr<sim::SlotPolicy> policy;
  if (flavor == "sync")
    policy = std::make_unique<adversary::UniformSlotPolicy>(U);
  else if (flavor == "max")
    policy = std::make_unique<adversary::UniformSlotPolicy>(R * U);
  else
    policy = per_station_policy(n, R);
  sim::Engine e(cfg, protocols<core::AbsProtocol>(n), std::move(policy),
                messages(n));
  sim::StopCondition stop;
  stop.max_time = static_cast<Tick>(20 * core::abs_slot_bound(n, R)) *
                  static_cast<Tick>(R) * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now()));

  Measured out;
  out.solved = e.channel_stats().successful >= 1;
  out.time_units = to_units(e.now());
  for (StationId id = 1; id <= n; ++id) {
    const auto* abs =
        dynamic_cast<const core::AbsProtocol&>(e.protocol(id)).automaton();
    if (abs) out.max_slots = std::max(out.max_slots, abs->slots());
  }
  return out;
}

void print_series() {
  util::Table t({"n", "R", "policy", "slots (worst station)",
                 "Thm-1 bound", "slots / (R^2 log2 n)", "time (units)"});
  util::CsvWriter csv("bench_abs_sst.csv",
                      {"n", "R", "policy", "slots", "bound", "time_units"});
  for (std::uint32_t R : {1u, 2u, 4u, 8u}) {
    for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u,
                            1024u}) {
      const auto m = run_abs(n, R, "perstation");
      const double norm =
          static_cast<double>(m.max_slots) /
          (static_cast<double>(R) * R * std::max(1.0, std::log2(n)));
      t.row(n, R, "perstation", m.max_slots, core::abs_slot_bound(n, R),
            norm, m.time_units);
      csv.row(n, R, "perstation", m.max_slots, core::abs_slot_bound(n, R),
              m.time_units);
      if (!m.solved) std::cout << "!! SST unsolved at n=" << n << "\n";
    }
  }
  std::cout << "== Theorem 1: ABS slot complexity, O(R^2 log n) ==\n"
            << t.to_string() << "\n(series also written to "
            << "bench_abs_sst.csv)\n\n";

  // Policy robustness at fixed (n, R).
  util::Table t2({"policy", "slots (worst station)", "time (units)"});
  for (const char* flavor : {"sync", "max", "perstation"}) {
    const auto m = run_abs(64, 4, flavor);
    t2.row(flavor, m.max_slots, m.time_units);
  }
  std::cout << "== ABS at n=64, R=4 across slot policies ==\n"
            << t2.to_string() << "\n";
}

void BM_AbsElection(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto R = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    const auto m = run_abs(n, R, "perstation");
    benchmark::DoNotOptimize(m.max_slots);
  }
  state.counters["slots"] = static_cast<double>(run_abs(n, R, "perstation").max_slots);
}
BENCHMARK(BM_AbsElection)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({256, 2})
    ->Args({1024, 8});

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_abs_sst — reproduces the Theorem 1 evaluation\n\n";
  print_series();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
