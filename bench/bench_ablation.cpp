// bench_ablation — experiment X2 of DESIGN.md: the design choices inside
// ABS are load-bearing. Three ablations:
//
//  1. Shrink the 1-bit threshold from 4R^2+3R toward 3R: the asymmetry
//     that lets 0-stations silence 1-stations disappears and elections
//     start failing (no clean single winner) under asynchrony.
//  2. Underestimate R (protocol constants computed from R_est < r): the
//     phase-alignment invariant (Lemma 1) breaks.
//  3. Overestimate R: correctness is kept (the thresholds are upper
//     bounds) but the slot complexity grows quadratically — quantifying
//     the cost of a pessimistic R.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/sync_binary_le.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

struct ElectionOutcome {
  bool solved = false;
  std::uint32_t winners = 0;
  std::uint32_t dangling = 0;  // still active after a success
  std::uint64_t worst_slots = 0;
};

ElectionOutcome run_election(std::uint32_t n, std::uint32_t true_r,
                             std::uint64_t t0, std::uint64_t t1) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = true_r;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  for (std::uint32_t i = 0; i < n; ++i)
    ps.push_back(std::make_unique<core::AbsProtocol>(t0, t1));
  sim::Engine e(cfg, std::move(ps), per_station_policy(n, true_r),
                messages(n));
  sim::StopCondition stop;
  stop.max_time = static_cast<Tick>(40 * core::abs_slot_bound(n, true_r)) *
                  static_cast<Tick>(true_r) * U;
  stop.predicate = [](const sim::Engine& eng) {
    return eng.channel_stats().successful >= 1;
  };
  e.run(stop);
  e.run(sim::until(e.now()));

  ElectionOutcome out;
  out.solved = e.channel_stats().successful >= 1;
  for (StationId id = 1; id <= n; ++id) {
    const auto* abs =
        dynamic_cast<const core::AbsProtocol&>(e.protocol(id)).automaton();
    if (!abs) continue;
    out.worst_slots = std::max(out.worst_slots, abs->slots());
    if (abs->outcome() == core::AbsAutomaton::Outcome::kWon) ++out.winners;
    if (abs->outcome() == core::AbsAutomaton::Outcome::kActive)
      ++out.dangling;
  }
  return out;
}

void print_threshold_ablation() {
  const std::uint32_t n = 16, R = 4;
  util::Table t({"threshold1", "solved", "winners", "dangling",
                 "worst slots", "healthy"});
  const std::uint64_t t0 = core::abs_threshold0(R);
  const std::uint64_t full = core::abs_threshold1(R);
  for (std::uint64_t t1 : {full, full / 2, full / 4, t0 + 2, t0}) {
    const auto out = run_election(n, R, t0, t1);
    const bool healthy = out.solved && out.winners == 1 && out.dangling == 0;
    t.row(t1, out.solved, out.winners, out.dangling, out.worst_slots,
          healthy);
  }
  std::cout << "== Ablation 1: shrinking ABS's 1-bit listening threshold "
               "(paper value "
            << full << " = 4R^2+3R at R=" << R << ") ==\n"
            << t.to_string()
            << "(only the paper value is guaranteed for every adversary; "
               "under this particular schedule smaller thresholds limp "
               "along until the asymmetry vanishes entirely — the bottom "
               "row deadlocks with no winner)\n\n";
}

void print_r_estimate_ablation() {
  const std::uint32_t n = 8, true_r = 4;
  util::Table t({"R_est", "solved", "winners", "dangling", "worst slots",
                 "healthy"});
  for (std::uint32_t r_est : {1u, 2u, 4u, 8u, 16u}) {
    const auto out = run_election(n, true_r, core::abs_threshold0(r_est),
                                  core::abs_threshold1(r_est));
    const bool healthy = out.solved && out.winners == 1 && out.dangling == 0;
    t.row(r_est, out.solved, out.winners, out.dangling, out.worst_slots,
          healthy);
  }
  std::cout << "== Ablation 2/3: protocol built for R_est while the true "
               "bound is r = 4 ==\n"
            << t.to_string()
            << "(R_est < 4 may break the election; R_est > 4 stays "
               "correct and pays ~R_est^2 slots)\n\n";
}

void print_long_silence_ablation() {
  // AO-ARRoW with a too-small long-silence threshold concludes "no
  // election in progress" during an election's legitimate quiet periods
  // and re-synchronizes into it: extra collisions and duplicate
  // elections. Sweep the threshold downward at fixed sync countdown.
  const std::uint64_t paper = core::long_silence_threshold(2);
  util::Table t({"long-silence threshold (slots)", "max queue (units)",
                 "collisions", "delivered frac"});
  for (std::uint64_t thr : {paper, paper / 2, paper / 4, paper / 8,
                            std::uint64_t{4}}) {
    core::AoArrowProtocol::Tuning tuning;
    tuning.long_silence_slots = thr;
    tuning.sync_countdown_slots = 2 * thr;
    sim::EngineConfig cfg;
    cfg.n = 4;
    cfg.bound_r = 2;
    std::vector<std::unique_ptr<sim::Protocol>> ps;
    for (int i = 0; i < 4; ++i)
      ps.push_back(std::make_unique<core::AoArrowProtocol>(tuning));
    sim::Engine e(cfg, std::move(ps), per_station_policy(4, 2),
                  saturating(util::Ratio(1, 2), 16 * U));
    e.run(sim::until(200000 * U));
    const auto& st = e.stats();
    t.row(thr, to_units(st.max_queued_cost),
          e.channel_stats().collided,
          st.injected_packets
              ? static_cast<double>(st.delivered_packets) /
                    static_cast<double>(st.injected_packets)
              : 1.0);
  }
  std::cout << "== Ablation 3b: AO-ARRoW's long-silence threshold (paper "
               "value "
            << paper << " slots at R = 2) ==\n"
            << t.to_string()
            << "(small thresholds re-enter live elections: collision "
               "counts rise; the paper value keeps the box-7 deduction "
               "sound)\n\n";
}

void print_subroutine_ablation() {
  // Theorem 3 parameterizes AO-ARRoW by its Leader_Election(R); swap the
  // classic synchronous binary search in and the elections misfire under
  // drifting schedules — visible as an order of magnitude more
  // collisions on the identical workload (the AO wrapper's recovery
  // paths keep deliveries going, which is itself a measured finding).
  auto run_with = [](core::LeaderElectionFactory le, const char* which) {
    sim::EngineConfig cfg;
    cfg.n = 4;
    cfg.bound_r = 2;
    std::vector<std::unique_ptr<sim::Protocol>> ps;
    for (int i = 0; i < 4; ++i)
      ps.push_back(std::make_unique<core::AoArrowProtocol>(le));
    std::vector<Tick> pattern{U, 2 * U};
    auto e = std::make_unique<sim::Engine>(
        cfg, std::move(ps),
        std::make_unique<adversary::CyclicSlotPolicy>(pattern),
        saturating(util::Ratio(1, 2), 8 * U));
    e->run(sim::until(200000 * U));
    (void)which;
    return e;
  };
  auto with_abs = run_with(core::AbsAutomaton::factory(), "ABS");
  auto with_sync =
      run_with(baselines::SyncBinaryLeAutomaton::factory(), "sync-LE");

  util::Table t({"Leader_Election(R)", "collisions", "delivered frac",
                 "final queue (units)"});
  auto add = [&](const char* name, const sim::Engine& e) {
    const auto& s = e.stats();
    t.row(name, e.channel_stats().collided,
          s.injected_packets
              ? static_cast<double>(s.delivered_packets) /
                    static_cast<double>(s.injected_packets)
              : 1.0,
          to_units(s.queued_cost));
  };
  add("ABS (paper)", *with_abs);
  add("sync binary search", *with_sync);
  std::cout << "== Ablation 4: the Leader_Election(R) subroutine "
               "(drifting cyclic schedule, R = 2, rho = 0.5) ==\n"
            << t.to_string()
            << "(the asynchrony-safe ABS is load-bearing: the synchronous "
               "search misfires into collisions)\n\n";
}

void BM_AblatedElection(benchmark::State& state) {
  const auto r_est = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto out = run_election(8, 4, core::abs_threshold0(r_est),
                                  core::abs_threshold1(r_est));
    benchmark::DoNotOptimize(out.winners);
  }
}
BENCHMARK(BM_AblatedElection)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_ablation — design-choice ablations for ABS "
               "(experiment X2 of DESIGN.md)\n\n";
  print_threshold_ablation();
  print_r_estimate_ablation();
  print_long_silence_ablation();
  print_subroutine_ablation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
