// bench_ledger — microbenchmark of the channel ledger hot path.
//
// The engine calls Ledger::feedback once per slot end, so its cost is the
// per-slot cost of the whole simulator. feedback() seeks its begin-sorted
// window with lower_bound (O(log W + neighborhood)); before that fix it
// scanned from the window front (O(W)), which made long history-keeping
// runs quadratic. This bench times feedback() at window sizes 1e2 / 1e4 /
// 1e6 and writes BENCH_ledger.json so future PRs can detect a regression
// of the hot path back to linear-in-window behaviour.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>

#include "channel/ledger.h"
#include "util/types.h"

namespace {

using namespace asyncmac;
using channel::Ledger;
using channel::Transmission;

constexpr Tick U = kTicksPerUnit;

Transmission tx(StationId station, Tick begin, Tick end) {
  Transmission t;
  t.station = station;
  t.begin = begin;
  t.end = end;
  return t;
}

// A window of `size` finalized transmissions: 4 stations taking turns with
// unit slots, packets back to back (the steady-state shape of a saturated
// stability run). Returns the ledger and the time just past the last end.
std::unique_ptr<Ledger> build_window(std::size_t size, Tick* now_out) {
  auto ledger = std::make_unique<Ledger>();
  Tick now = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const StationId s = static_cast<StationId>(1 + (i % 4));
    ledger->add(tx(s, now, now + U));
    now += U;
  }
  ledger->finalize_until(now);
  *now_out = now;
  return ledger;
}

void BM_FeedbackAtWindowSize(benchmark::State& state) {
  Tick now = 0;
  const auto ledger =
      build_window(static_cast<std::size_t>(state.range(0)), &now);
  // Query a slot at the live end of the window — the engine's access
  // pattern (slots never reference the distant past).
  for (auto _ : state) {
    const Feedback fb = ledger->feedback(now - U, now);
    benchmark::DoNotOptimize(fb);
  }
  state.counters["window"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FeedbackAtWindowSize)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_SteadyStateAddFeedbackPrune(benchmark::State& state) {
  // The engine's full per-slot ledger sequence at a bounded window.
  Ledger ledger;
  Tick now = 0;
  for (auto _ : state) {
    ledger.add(tx(1 + static_cast<StationId>(now / U) % 4, now, now + U));
    const Feedback fb = ledger.feedback(now, now + U);
    benchmark::DoNotOptimize(fb);
    now += U;
    if ((now / U) % 4096 == 0) ledger.prune_before(now - 8 * U);
  }
}
BENCHMARK(BM_SteadyStateAddFeedbackPrune);

double time_feedback_ns(std::size_t window) {
  Tick now = 0;
  const auto ledger = build_window(window, &now);
  // Warm up, then time a fixed batch of queries.
  for (int i = 0; i < 1000; ++i)
    benchmark::DoNotOptimize(ledger->feedback(now - U, now));
  constexpr int kIters = 200000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i)
    benchmark::DoNotOptimize(ledger->feedback(now - U, now));
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         kIters;
}

// Perf-trajectory file: one JSON object per window size, so a future PR
// can diff ns_per_feedback and flag a return to O(W) behaviour (the
// telltale is the 1e6/1e2 ratio exploding, not the absolute numbers).
void write_trajectory() {
  const std::size_t windows[] = {100, 10000, 1000000};
  std::ofstream out("BENCH_ledger.json");
  out << "{\n  \"bench\": \"ledger_feedback\",\n  \"unit\": "
         "\"ns_per_feedback\",\n  \"results\": [\n";
  double ns100 = 0, ns1m = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double ns = time_feedback_ns(windows[i]);
    if (windows[i] == 100) ns100 = ns;
    if (windows[i] == 1000000) ns1m = ns;
    out << "    {\"window\": " << windows[i] << ", \"ns_per_feedback\": "
        << ns << "}" << (i + 1 < 3 ? "," : "") << "\n";
    std::cout << "  window " << windows[i] << ": " << ns
              << " ns/feedback\n";
  }
  const double ratio = ns100 > 0 ? ns1m / ns100 : 0;
  out << "  ],\n  \"ratio_1e6_over_1e2\": " << ratio << "\n}\n";
  std::cout << "  1e6/1e2 cost ratio: " << ratio
            << " (O(W) would be ~10000; logarithmic stays single-digit)\n"
            << "(trajectory written to BENCH_ledger.json)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_ledger — feedback() cost vs live window size\n\n";
  write_trajectory();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
