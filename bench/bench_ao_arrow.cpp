// bench_ao_arrow — regenerates the Theorem-3 evaluation: AO-ARRoW's
// measured worst-case total queue cost versus the closed-form bound L
// across the injection-rate axis (the stability "hockey stick" as
// rho -> 1), and across n and R.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

constexpr Tick kHorizon = 400000 * U;

void print_rho_series() {
  util::Table t({"rho", "max queue (units)", "final queue", "bound L",
                 "delivered frac", "wasted frac"});
  util::CsvWriter csv("bench_ao_arrow.csv",
                      {"rho", "max_queue", "final_queue", "bound_L",
                       "delivered_frac", "wasted_frac"});
  for (int pct : {10, 30, 50, 70, 80, 90, 95}) {
    const util::Ratio rho(pct, 100);
    const Tick burst = 16 * U;
    // Thm 3 bounds the *worst case*: replicate over derived seeds (in
    // parallel — every replica is an independent Engine) and report the
    // replica with the largest max queue.
    const auto reps = replicate_seeds(3, 1, /*jobs=*/0, [&](std::uint64_t s) {
      return run_pt<core::AoArrowProtocol>(4, 2, rho, burst, kHorizon,
                                           /*synchronous=*/false, nullptr, s);
    });
    const auto res = *std::max_element(
        reps.begin(), reps.end(), [](const PtResult& a, const PtResult& b2) {
          return a.max_queue_cost_units < b2.max_queue_cost_units;
        });
    const auto b = core::arrow_bounds(4, 2, 2, rho, to_units(burst));
    t.row(pct / 100.0, res.max_queue_cost_units, res.final_queue_cost_units,
          b.L, res.delivered_fraction, res.wasted_fraction);
    csv.row(pct / 100.0, res.max_queue_cost_units,
            res.final_queue_cost_units, b.L, res.delivered_fraction,
            res.wasted_fraction);
  }
  std::cout << "== Theorem 3: AO-ARRoW queue cost vs rho "
               "(n=4, R=2, horizon="
            << to_units(kHorizon) << " units) ==\n"
            << t.to_string()
            << "(measured max queue must stay below L for every rho < 1; "
               "series in bench_ao_arrow.csv)\n\n";
}

void print_nr_matrix() {
  util::Table t({"n", "R", "max queue (units)", "bound L", "within bound"});
  for (std::uint32_t n : {2u, 4u, 8u}) {
    for (std::uint32_t R : {1u, 2u, 4u}) {
      const util::Ratio rho(7, 10);
      const Tick burst = 8 * static_cast<Tick>(R) * U;
      const auto res = run_pt<core::AoArrowProtocol>(n, R, rho, burst,
                                                     kHorizon);
      const auto b = core::arrow_bounds(n, R, R, rho, to_units(burst));
      t.row(n, R, res.max_queue_cost_units, b.L,
            res.max_queue_cost_units < b.L);
    }
  }
  std::cout << "== AO-ARRoW at rho = 0.7 across (n, R) ==\n" << t.to_string()
            << "\n";
}

void print_burstiness_series() {
  util::Table t({"burst b (units)", "max queue (units)", "bound L"});
  for (Tick b_units : {4, 16, 64, 256}) {
    const util::Ratio rho(8, 10);
    const auto res = run_pt<core::AoArrowProtocol>(4, 2, rho, b_units * U,
                                                   kHorizon);
    const auto b = core::arrow_bounds(4, 2, 2, rho,
                                      static_cast<double>(b_units));
    t.row(b_units, res.max_queue_cost_units, b.L);
  }
  std::cout << "== AO-ARRoW queue vs burstiness (rho = 0.8) ==\n"
            << t.to_string() << "\n";
}

void BM_AoArrowThroughput(benchmark::State& state) {
  const int pct = static_cast<int>(state.range(0));
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const auto res = run_pt<core::AoArrowProtocol>(
        4, 2, util::Ratio(pct, 100), 16 * U, 50000 * U);
    delivered = res.delivered;
    benchmark::DoNotOptimize(delivered);
  }
  state.counters["delivered"] = static_cast<double>(delivered);
}
BENCHMARK(BM_AoArrowThroughput)->Arg(50)->Arg(90);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_ao_arrow — reproduces the Theorem 3 evaluation\n\n";
  print_rho_series();
  print_nr_matrix();
  print_burstiness_series();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
