// bench_latency — extension series (in the spirit of the packet-latency
// study the paper cites as [10]): delivery-latency distributions of the
// ARRoW protocols versus injection rate and versus R. Not a figure of
// the reproduced paper; included because latency is the first question a
// downstream user asks after stability.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "baselines/rrw.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

constexpr Tick kHorizon = 200000 * U;

struct LatencyRow {
  double p50 = 0, p99 = 0, max = 0;
  std::uint64_t n = 0;
};

template <typename P>
LatencyRow run_latency(std::uint32_t n, std::uint32_t R, util::Ratio rho,
                       bool synchronous) {
  sim::EngineConfig cfg;
  cfg.n = n;
  cfg.bound_r = R;
  auto e = std::make_unique<sim::Engine>(
      cfg, protocols<P>(n),
      synchronous ? sync_policy() : per_station_policy(n, R),
      saturating(rho, 8 * static_cast<Tick>(R) * U));
  e->run(sim::until(kHorizon));
  LatencyRow out;
  const auto& lat = e->stats().latency;
  if (!lat.empty()) {
    out.p50 = to_units(lat.quantile(0.5));
    out.p99 = to_units(lat.quantile(0.99));
    out.max = to_units(lat.max());
    out.n = lat.count();
  }
  return out;
}

void print_latency_vs_rho() {
  util::Table t({"protocol", "rho", "p50 (units)", "p99", "max",
                 "deliveries"});
  util::CsvWriter csv("bench_latency.csv",
                      {"protocol", "rho", "p50", "p99", "max"});
  for (int pct : {30, 60, 90}) {
    const util::Ratio rho(pct, 100);
    const auto ao = run_latency<core::AoArrowProtocol>(4, 2, rho, false);
    const auto ca = run_latency<core::CaArrowProtocol>(4, 2, rho, false);
    t.row("AO-ARRoW", pct / 100.0, ao.p50, ao.p99, ao.max, ao.n);
    t.row("CA-ARRoW", pct / 100.0, ca.p50, ca.p99, ca.max, ca.n);
    csv.row("AO-ARRoW", pct / 100.0, ao.p50, ao.p99, ao.max);
    csv.row("CA-ARRoW", pct / 100.0, ca.p50, ca.p99, ca.max);
  }
  const auto rrw = run_latency<baselines::RrwProtocol>(
      4, 1, util::Ratio(6, 10), true);
  t.row("RRW (R=1)", 0.6, rrw.p50, rrw.p99, rrw.max, rrw.n);
  std::cout << "== Delivery latency vs rho (n=4, R=2) ==\n" << t.to_string()
            << "(CA-ARRoW's turn cycle gives tight tails; AO-ARRoW's "
               "election+withhold batches trade latency for zero control "
               "traffic; series in bench_latency.csv)\n\n";
}

void print_latency_vs_r() {
  util::Table t({"R", "AO p99 (units)", "CA p99 (units)"});
  for (std::uint32_t R : {1u, 2u, 4u, 8u}) {
    const util::Ratio rho(1, 2);
    const auto ao = run_latency<core::AoArrowProtocol>(4, R, rho, R == 1);
    const auto ca = run_latency<core::CaArrowProtocol>(4, R, rho, R == 1);
    t.row(R, ao.p99, ca.p99);
  }
  std::cout << "== Tail latency vs R (rho = 0.5) ==\n" << t.to_string()
            << "(the asynchrony price also shows in the tails — "
               "polynomial in R, matching the slot-complexity "
               "constants)\n";
}

void BM_LatencyRun(benchmark::State& state) {
  for (auto _ : state) {
    const auto row =
        run_latency<core::CaArrowProtocol>(4, 2, util::Ratio(1, 2), false);
    benchmark::DoNotOptimize(row.p99);
  }
}
BENCHMARK(BM_LatencyRun);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_latency — delivery-latency distributions "
               "(extension series)\n\n";
  print_latency_vs_rho();
  print_latency_vs_r();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
