// bench_sst_lower_bound — regenerates the Theorem-2 series: the mirror-
// execution adversary forces ANY deterministic SST algorithm through at
// least Omega(r (log n / log r + 1)) slots without a success. The driver
// runs the construction against ABS (and the synchronous binary search),
// verifies the produced execution really is a mirror execution on the
// exact channel model, and reports forced slots next to the formula.
#include <benchmark/benchmark.h>

#include <iostream>

#include "adversary/mirror.h"
#include "baselines/sync_binary_le.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

adversary::ProtocolFactory abs_factory() {
  return [](StationId) { return std::make_unique<core::AbsProtocol>(); };
}

adversary::ProtocolFactory sync_le_factory() {
  return [](StationId) {
    return std::make_unique<baselines::SyncBinaryLeProtocol>();
  };
}

void print_series() {
  util::Table t({"algorithm", "n", "r", "forced slots/station",
                 "Thm-2 formula", "phases", "mirror verified"});
  util::CsvWriter csv(
      "bench_sst_lower_bound.csv",
      {"algorithm", "n", "r", "forced_slots", "formula", "phases"});

  for (std::uint32_t r : {2u, 4u, 8u}) {
    for (std::uint32_t n : {16u, 64u, 256u, 1024u}) {
      adversary::MirrorRun run(abs_factory(), n, r, r);
      const auto res = run.run();
      const double formula = core::sst_lower_bound_slots(n, r);
      t.row("ABS", n, r, res.slots_per_station, formula, res.phases,
            res.verified_mirror);
      csv.row("ABS", n, r, res.slots_per_station, formula, res.phases);
    }
  }
  for (std::uint32_t n : {64u, 1024u}) {
    adversary::MirrorRun run(sync_le_factory(), n, 2, 2);
    const auto res = run.run();
    t.row("sync-binary-LE", n, 2, res.slots_per_station,
          core::sst_lower_bound_slots(n, 2), res.phases,
          res.verified_mirror);
    csv.row("sync-binary-LE", n, 2, res.slots_per_station,
            core::sst_lower_bound_slots(n, 2), res.phases);
  }
  std::cout
      << "== Theorem 2: mirror-execution lower bound "
         "Omega(r (log n / log r + 1)) ==\n"
      << t.to_string()
      << "(forced slots must dominate the formula; series in "
         "bench_sst_lower_bound.csv)\n\n";

  // The r-dependence at fixed n: the paper highlights the extra
  // Omega(r / log r) factor versus the synchronous Omega(log n).
  util::Table t2({"r", "forced slots (n=1024)", "formula",
                  "vs synchronous log2 n = 10"});
  for (std::uint32_t r : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    adversary::MirrorRun run(abs_factory(), 1024, r, r);
    const auto res = run.run();
    t2.row(r, res.slots_per_station, core::sst_lower_bound_slots(1024, r),
           static_cast<double>(res.slots_per_station) / 10.0);
  }
  std::cout << "== Asynchrony factor at n = 1024 ==\n" << t2.to_string()
            << "\n";
}

void BM_MirrorConstruction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto r = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    adversary::MirrorRun run(abs_factory(), n, r, r);
    const auto res = run.run();
    benchmark::DoNotOptimize(res.phases);
  }
}
BENCHMARK(BM_MirrorConstruction)->Args({64, 2})->Args({256, 4});

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_sst_lower_bound — reproduces the Theorem 2 "
               "evaluation\n\n";
  print_series();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
