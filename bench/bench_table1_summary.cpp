// bench_table1_summary — regenerates the paper's Fig. 1 (Table I): the
// four model rows (control messages x collisions) under bounded
// asynchrony (R > 1), next to the synchronous state of the art (R = 1).
//
// Expected shape (matching the paper's summary):
//   row 1 (no ctrl, no collisions): INSTABILITY for R > 1 — the Theorem-4
//         adversary forces a collision or queue overflow on every
//         collision-free no-control protocol; at R = 1 RRW is stable.
//   row 2 (no ctrl, collisions ok): AO-ARRoW stable for every rho < 1.
//   row 3 (ctrl ok, no collisions): CA-ARRoW stable, zero collisions.
//   row 4 (ctrl + collisions):      still NO stability at rho = 1
//         (Theorem 5) — the only gap versus the synchronous channel.
#include <benchmark/benchmark.h>

#include <iostream>

#include "adversary/collision_forcer.h"
#include "baselines/mbtf.h"
#include "baselines/rrw.h"
#include "baselines/silence_tdma.h"
#include "harness.h"

namespace {

using namespace asyncmac;
using namespace asyncmac::bench;

constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kR = 2;
constexpr Tick kHorizon = 400000 * U;
constexpr Tick kBurst = 16 * U;

void print_async_rows() {
  util::Table t({"ctrl msgs", "collisions", "protocol", "rho",
                 "max queue (units)", "bound (units)", "collided", "verdict"});

  // ---- Row 1: no control, collision-free => instability (Theorem 4).
  {
    adversary::ProtocolFactory f = [](StationId) {
      return std::make_unique<baselines::SilenceCountTdmaProtocol>();
    };
    const auto forced = adversary::force_collision_or_overflow(
        f, util::Ratio(1, 2), 50, kR);
    const char* what =
        forced.kind ==
                adversary::CollisionForceOutcome::Kind::kCollisionForced
            ? "collision forced (Thm 4)"
            : "queue overflow (Thm 4)";
    t.row("no", "no", "silence-TDMA", 0.5, "n/a", "n/a",
          forced.collisions, what);

    const auto rrw = run_pt<baselines::RrwProtocol>(kN, kR, util::Ratio(1, 2),
                                                    kBurst, kHorizon);
    t.row("no", "no", "RRW (async)", 0.5, rrw.max_queue_cost_units, "n/a",
          rrw.collisions,
          rrw.collisions > 0 ? "collides: UNSTABLE" : "UNSTABLE");
  }

  // ---- Row 2: no control, collisions allowed => AO-ARRoW stable rho < 1.
  for (int pct : {50, 90}) {
    const util::Ratio rho(pct, 100);
    const auto res = run_pt<core::AoArrowProtocol>(kN, kR, rho, kBurst,
                                                   kHorizon);
    const auto bounds =
        core::arrow_bounds(kN, kR, kR, rho, to_units(kBurst));
    t.row("no", "yes", "AO-ARRoW", pct / 100.0, res.max_queue_cost_units,
          bounds.L, res.collisions,
          res.max_queue_cost_units < bounds.L ? "STABLE (Thm 3)"
                                              : "exceeded bound!");
  }

  // ---- Row 3: control allowed, collision-free => CA-ARRoW stable.
  for (int pct : {50, 90}) {
    const util::Ratio rho(pct, 100);
    const auto res = run_pt<core::CaArrowProtocol>(kN, kR, rho, kBurst,
                                                   kHorizon);
    const double bound = core::ca_arrow_bound(kN, kR, rho, to_units(kBurst));
    t.row("yes", "no", "CA-ARRoW", pct / 100.0, res.max_queue_cost_units,
          bound, res.collisions,
          res.collisions == 0 && res.max_queue_cost_units < bound
              ? "STABLE (Thm 6)"
              : "violated!");
  }

  // ---- Row 4: everything allowed, rho = 1 => instability (Theorem 5).
  {
    auto chasing_result = [&](Tick horizon) {
      return run_pt<core::CaArrowProtocol>(
          2, kR, util::Ratio::one(), kBurst, horizon, false,
          std::make_unique<adversary::DrainChasingInjector>(
              util::Ratio::one(), kBurst, 1, 2));
    };
    const auto half = chasing_result(kHorizon / 2);
    const auto full = chasing_result(kHorizon);
    // Wasted hand-over time accrues with every channel hand-over, so the
    // backlog keeps growing (sub-linearly but without bound) — any solid
    // margin between the half- and full-horizon backlog demonstrates it.
    const bool grows =
        full.final_queue_cost_units > half.final_queue_cost_units * 1.15 &&
        full.final_queue_cost_units > 500;
    t.row("yes", "yes", "CA-ARRoW @ rho=1", 1.0, full.max_queue_cost_units,
          "n/a (Thm 5)", full.collisions,
          grows ? "queues grow: UNSTABLE (Thm 5)" : "unexpectedly flat");
  }

  std::cout << "== Table I (async rows, R = " << kR << ", n = " << kN
            << ", horizon = " << to_units(kHorizon) << " units) ==\n"
            << t.to_string() << "\n";
}

void print_sync_rows() {
  util::Table t({"protocol", "rho", "max queue (units)", "collided",
                 "control msgs", "verdict"});
  for (int pct : {50, 90}) {
    const auto rrw = run_pt<baselines::RrwProtocol>(
        kN, 1, util::Ratio(pct, 100), kBurst, kHorizon, /*synchronous=*/true);
    t.row("RRW (R=1)", pct / 100.0, rrw.max_queue_cost_units, rrw.collisions,
          rrw.control_msgs,
          rrw.collisions == 0 && rrw.max_queue_cost_units < 1000
              ? "STABLE"
              : "violated!");
  }
  for (int pct : {50, 90}) {
    const auto mbtf = run_pt<baselines::MbtfProtocol>(
        kN, 1, util::Ratio(pct, 100), kBurst, kHorizon, /*synchronous=*/true);
    t.row("MBTF (R=1)", pct / 100.0, mbtf.max_queue_cost_units,
          mbtf.collisions, mbtf.control_msgs,
          mbtf.max_queue_cost_units < 1000 ? "STABLE" : "violated!");
  }
  std::cout << "== Table I (synchronous comparison column, R = 1) ==\n"
            << t.to_string() << "\n";
}

// ------------------------------------------------- timing benchmarks

void BM_AoArrowSimulation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto R = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    const auto res = run_pt<core::AoArrowProtocol>(
        n, R, util::Ratio(1, 2), kBurst, 20000 * U);
    benchmark::DoNotOptimize(res.delivered);
  }
}
BENCHMARK(BM_AoArrowSimulation)->Args({2, 2})->Args({4, 2})->Args({8, 4});

void BM_CaArrowSimulation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto R = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    const auto res = run_pt<core::CaArrowProtocol>(
        n, R, util::Ratio(1, 2), kBurst, 20000 * U);
    benchmark::DoNotOptimize(res.delivered);
  }
}
BENCHMARK(BM_CaArrowSimulation)->Args({2, 2})->Args({4, 2})->Args({8, 4});

}  // namespace

int main(int argc, char** argv) {
  std::cout << "bench_table1_summary — reproduces Fig. 1 / Table I of\n"
               "\"The Impact of Asynchrony on Stability of MAC\" (ICDCS'24)\n\n";
  print_async_rows();
  print_sync_rows();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
