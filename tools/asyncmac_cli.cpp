// tools/asyncmac_cli — command-line simulator driver.
//
// Run any protocol of the library against any workload/slot adversary
// without writing code:
//
//   asyncmac_cli --protocol=ca-arrow --n=4 --r=2 --rho=0.7
//                --burst=16 --policy=perstation --horizon=100000
//   (one command line; wrapped here for width)
//
// Options:
//   --protocol=P   ao-arrow | ca-arrow | rrw | mbtf | aloha | beb |
//                  silence-tdma | adaptive-abs        (default ao-arrow)
//   --n=N          stations (default 4)
//   --r=R          asynchrony bound R (default 2)
//   --rho=F        injection rate in [0, 1] (default 0.5)
//   --burst=B      burstiness in time units (default 16)
//   --policy=S     sync | max | perstation | cyclic | random | stretch-tx
//                  (default perstation)
//   --pattern=S    roundrobin | single | random | maxqueue (default
//                  roundrobin)
//   --horizon=T    simulated time units (default 100000)
//   --seed=S       master seed (default 1)
//   --json         print stats as JSON instead of text
//   --trace=T      also render the first T time units of the schedule
//   --msr          estimate the Max Stable Rate instead of a single run
//
// Exit code 0 on success; 2 on bad usage.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/msr.h"
#include "analysis/registry.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "trace/renderer.h"

namespace {

using namespace asyncmac;
constexpr Tick U = kTicksPerUnit;

struct Options {
  std::string protocol = "ao-arrow";
  std::uint32_t n = 4;
  std::uint32_t r = 2;
  double rho = 0.5;
  Tick burst_units = 16;
  std::string policy = "perstation";
  std::string pattern = "roundrobin";
  Tick horizon_units = 100000;
  std::uint64_t seed = 1;
  bool json = false;
  Tick trace_units = 0;
  bool msr = false;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "asyncmac_cli: " << error
            << "\nsee the header of tools/asyncmac_cli.cpp for options\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--protocol=", 0) == 0)
      opt.protocol = value("--protocol=");
    else if (arg.rfind("--n=", 0) == 0)
      opt.n = static_cast<std::uint32_t>(std::stoul(value("--n=")));
    else if (arg.rfind("--r=", 0) == 0)
      opt.r = static_cast<std::uint32_t>(std::stoul(value("--r=")));
    else if (arg.rfind("--rho=", 0) == 0)
      opt.rho = std::stod(value("--rho="));
    else if (arg.rfind("--burst=", 0) == 0)
      opt.burst_units = std::stol(value("--burst="));
    else if (arg.rfind("--policy=", 0) == 0)
      opt.policy = value("--policy=");
    else if (arg.rfind("--pattern=", 0) == 0)
      opt.pattern = value("--pattern=");
    else if (arg.rfind("--horizon=", 0) == 0)
      opt.horizon_units = std::stol(value("--horizon="));
    else if (arg.rfind("--seed=", 0) == 0)
      opt.seed = std::stoull(value("--seed="));
    else if (arg == "--json")
      opt.json = true;
    else if (arg.rfind("--trace=", 0) == 0)
      opt.trace_units = std::stol(value("--trace="));
    else if (arg == "--msr")
      opt.msr = true;
    else
      usage("unknown argument: " + arg);
  }
  if (opt.n < 1) usage("--n must be >= 1");
  if (opt.r < 1) usage("--r must be >= 1");
  if (opt.rho < 0 || opt.rho > 1) usage("--rho must lie in [0, 1]");
  return opt;
}

std::unique_ptr<sim::SlotPolicy> make_policy(const Options& opt) {
  try {
    return adversary::make_slot_policy(opt.policy, opt.n, opt.r, opt.seed);
  } catch (const std::invalid_argument&) {
    usage("unknown policy: " + opt.policy);
  }
}

std::unique_ptr<sim::InjectionPolicy> make_injector(const Options& opt,
                                                    util::Ratio rho) {
  using namespace asyncmac::adversary;
  const Tick burst = opt.burst_units * U;
  if (opt.pattern == "roundrobin")
    return std::make_unique<SaturatingInjector>(
        rho, burst, TargetPattern::kRoundRobin, 1, opt.seed + 1);
  if (opt.pattern == "single")
    return std::make_unique<SaturatingInjector>(
        rho, burst, TargetPattern::kSingle, 1, opt.seed + 1);
  if (opt.pattern == "random")
    return std::make_unique<SaturatingInjector>(
        rho, burst, TargetPattern::kRandom, 1, opt.seed + 1);
  if (opt.pattern == "maxqueue")
    return std::make_unique<MaxQueueInjector>(rho, burst);
  usage("unknown pattern: " + opt.pattern);
}

std::unique_ptr<sim::Engine> build_engine(const Options& opt,
                                          util::Ratio rho,
                                          std::uint64_t seed) {
  sim::EngineConfig cfg;
  cfg.n = opt.n;
  cfg.bound_r = opt.r;
  cfg.seed = seed;
  cfg.record_trace = opt.trace_units > 0;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  try {
    ps = analysis::make_protocols(opt.protocol, opt.n);
  } catch (const std::invalid_argument&) {
    usage("unknown protocol: " + opt.protocol);
  }
  return std::make_unique<sim::Engine>(cfg, std::move(ps), make_policy(opt),
                                       make_injector(opt, rho));
}

int run_msr(const Options& opt) {
  analysis::MsrConfig cfg;
  cfg.probe.horizon = opt.horizon_units * U;
  cfg.base_seed = opt.seed;
  const auto res = analysis::estimate_msr(
      [&](util::Ratio rho, std::uint64_t seed) {
        return build_engine(opt, rho, seed);
      },
      cfg);
  std::cout << "protocol=" << opt.protocol << " n=" << opt.n
            << " R=" << opt.r << " policy=" << opt.policy
            << "  measured MSR = " << res.msr_pct << "% (" << res.probes
            << " probes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  if (opt.msr) return run_msr(opt);

  const auto rho = util::Ratio::from_double(opt.rho);
  auto engine = build_engine(opt, rho, opt.seed);
  engine->run(sim::until(opt.horizon_units * U));

  const auto& s = engine->stats();
  const auto& ch = engine->channel_stats();
  if (opt.json) {
    std::cout << metrics::to_json(s, &ch);
  } else {
    std::cout << "protocol=" << opt.protocol << " n=" << opt.n
              << " R=" << opt.r << " rho=" << opt.rho
              << " policy=" << opt.policy << " horizon="
              << opt.horizon_units << "\n"
              << "  injected   " << s.injected_packets << " packets ("
              << to_units(s.injected_cost) << " cost units)\n"
              << "  delivered  " << s.delivered_packets << "\n"
              << "  queued     " << s.queued_packets << " (max cost "
              << to_units(s.max_queued_cost) << " units)\n"
              << "  channel    " << ch.transmissions << " transmissions, "
              << ch.successful << " successful, " << ch.collided
              << " collided, " << ch.control_transmissions << " control\n";
    if (!s.latency.empty())
      std::cout << "  latency    p50 " << to_units(s.latency.quantile(0.5))
                << "  p99 " << to_units(s.latency.quantile(0.99))
                << "  max " << to_units(s.latency.max()) << " (units)\n";
  }
  if (opt.trace_units > 0) {
    trace::RenderOptions r;
    r.to = opt.trace_units * U;
    std::cout << "\n" << trace::render_schedule(engine->trace().slots(), r);
  }
  return 0;
}
