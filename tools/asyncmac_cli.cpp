// tools/asyncmac_cli — command-line simulator driver.
//
// Run any protocol of the library against any workload/slot adversary
// without writing code:
//
//   asyncmac_cli --protocol=ca-arrow --n=4 --r=2 --rho=0.7
//                --burst=16 --policy=perstation --horizon=100000
//   (one command line; wrapped here for width)
//
// `asyncmac_cli --help` prints the full flag reference (print_help below
// is the single source of truth; the help smoke tests in
// tools/CMakeLists.txt pin its coverage). Modes:
//
//   (default)           one simulation run, stats as text or --json
//   --grid              experiment grid over comma-list dimensions
//   --msr               Max Stable Rate estimate
//   resume <ckpt>       continue a run from a checkpoint file
//   fuzz [...]          property-fuzzing campaign (src/verify/)
//   stats <jsonl>       summarize a telemetry JSONL stream
//   serve [...]         distributed-sweep coordinator (src/sweep/)
//   worker --port=P     distributed-sweep worker
//
// Checkpointing (docs/CHECKPOINT.md): a single run with
// --checkpoint-every=K --checkpoint-dir=D autosaves rotating snapshots
// every K slot events; `resume` rebuilds the engine from the embedded
// RunSpec and continues bit-for-bit. Grid mode takes --checkpoint-dir
// alone and keeps a per-cell manifest so an interrupted sweep restarts at
// the first incomplete cell.
//
// Exit code 0 on success; 1 on fuzz violations / failed replay / bad
// checkpoint; 2 on bad usage.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/experiment.h"
#include "analysis/msr.h"
#include "analysis/registry.h"
#include "energy/meter.h"
#include "live/daemon.h"
#include "live/station.h"
#include "live/udp.h"
#include "live/virtual_net.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "snapshot/checkpoint.h"
#include "sweep/tcp.h"
#include "telemetry/jsonl.h"
#include "telemetry/registry.h"
#include "telemetry/summary.h"
#include "trace/renderer.h"
#include "util/parse.h"
#include "verify/campaign.h"
#include "verify/repro.h"

namespace {

using namespace asyncmac;
constexpr Tick U = kTicksPerUnit;

struct Options {
  std::string protocol = "ao-arrow";
  std::uint32_t n = 4;
  std::uint32_t r = 2;
  double rho = 0.5;
  Tick burst_units = 16;
  std::string policy = "perstation";
  std::string pattern = "roundrobin";
  Tick horizon_units = 100000;
  std::uint64_t seed = 1;
  bool json = false;
  Tick trace_units = 0;
  bool msr = false;
  bool grid = false;
  int seeds = 1;
  unsigned jobs = 0;
  unsigned cohort = 0;
  std::string csv_path;
  // Raw comma-list forms of the sweepable dimensions (grid mode).
  std::string n_list = "4";
  std::string r_list = "2";
  std::string rho_list = "0.5";
  std::string telemetry_path;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  // k-restrained channel (0 = unrestrained) and per-slot energy model.
  std::uint32_t restrained_k = 0;
  bool restrained_jam = true;
  bool energy_enabled = false;
  std::uint64_t energy_cost_transmit = 1;
  std::uint64_t energy_cost_listen = 1;
  std::uint64_t energy_cost_sleep = 0;
};

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (from <= s.size()) {
    const std::size_t comma = s.find(',', from);
    const std::size_t to = comma == std::string::npos ? s.size() : comma;
    if (to > from) out.push_back(s.substr(from, to - from));
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  return out;
}

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "asyncmac_cli: " << error
            << "\nrun `asyncmac_cli --help` for the full flag reference\n";
  std::exit(2);
}

// The complete flag reference, covering every mode and subcommand. The
// help smoke tests (tools/CMakeLists.txt) pin that run/grid/msr/fuzz/
// stats/resume and the checkpoint/telemetry flags all appear here — keep
// it in sync when adding flags.
[[noreturn]] void print_help() {
  std::cout <<
      "asyncmac_cli - discrete-event MAC simulator driver\n"
      "\n"
      "usage:\n"
      "  asyncmac_cli [run flags]              one simulation run\n"
      "  asyncmac_cli --grid [run flags]       experiment grid sweep\n"
      "  asyncmac_cli --msr [run flags]        Max Stable Rate estimate\n"
      "  asyncmac_cli resume <ckpt|dir> [...]  continue a checkpointed run\n"
      "                 (a directory resumes its newest ckpt-*.snap)\n"
      "  asyncmac_cli fuzz [fuzz flags]        property-fuzzing campaign\n"
      "  asyncmac_cli stats <file> [--top=N]   summarize telemetry JSONL\n"
      "  asyncmac_cli serve [serve flags]      distributed-sweep coordinator\n"
      "  asyncmac_cli worker --port=P          distributed-sweep worker\n"
      "  asyncmac_cli live-serve [...]         live channel-emulator daemon\n"
      "  asyncmac_cli live-station [...]       live station client\n"
      "  asyncmac_cli --help                   this reference\n"
      "\n"
      "run flags (single run, --msr, and --grid):\n"
      "  --protocol=P   ao-arrow | ca-arrow | adaptive-abs | abs | rrw |\n"
      "                 mbtf | aloha | beb | csma-lbt | silence-tdma |\n"
      "                 sync-binary-le | listen | tree-resolution\n"
      "                 (default ao-arrow)\n"
      "  --n=N          stations (default 4)\n"
      "  --r=R          asynchrony bound R >= 1 (default 2)\n"
      "  --rho=F        injection rate in [0, 1] (default 0.5)\n"
      "  --burst=B      burstiness in time units (default 16)\n"
      "  --policy=S     sync | max | perstation | cyclic | random |\n"
      "                 stretch-tx (default perstation)\n"
      "  --pattern=S    roundrobin | single | random | maxqueue (default\n"
      "                 roundrobin)\n"
      "  --horizon=T    simulated time units (default 100000)\n"
      "  --seed=S       master seed (default 1)\n"
      "  --json         print stats as JSON instead of text\n"
      "  --trace=T      also render the first T time units of the schedule\n"
      "  --telemetry=P  stream run telemetry as JSONL to P (never changes\n"
      "                 simulation results; see docs/OBSERVABILITY.md)\n"
      "  --restrained-k=K[:jam|reject]  k-restrained channel: at most K\n"
      "                 concurrent transmissions; over-capacity ones jam\n"
      "                 (sent anyway, guaranteed collision; default) or\n"
      "                 are rejected (suppressed). 0 = unrestrained\n"
      "  --energy-model=TX:LISTEN:SLEEP  per-slot energy accounting with\n"
      "                 the three integer costs (transmit / listen with a\n"
      "                 non-empty queue / idle-sleep); observation-only,\n"
      "                 never changes simulation results (docs/ENERGY.md)\n"
      "  --checkpoint-every=K  single run: autosave a snapshot every K\n"
      "                 slot events (requires --checkpoint-dir)\n"
      "  --checkpoint-dir=D    single run: rotating snapshot directory;\n"
      "                 grid: per-cell manifest directory for resumable\n"
      "                 sweeps (see docs/CHECKPOINT.md)\n"
      "\n"
      "grid flags (--grid; --protocol/--n/--r/--rho/--policy take comma\n"
      "lists and the cross product x --seeds replications runs on --jobs\n"
      "workers, see analysis/experiment.h):\n"
      "  --seeds=K      seed replications per cell (default 1)\n"
      "  --jobs=J       worker threads, 0 = all cores (default 0);\n"
      "                 records are byte-identical for every J\n"
      "  --cohort=K     batch up to K cells differing only in seed and\n"
      "                 injector params (rho) through the lockstep cohort\n"
      "                 engine; 0 = auto, 1 = scalar\n"
      "                 (default 0); records are byte-identical for\n"
      "                 every K\n"
      "  --csv=PATH     also write the records as CSV\n"
      "\n"
      "resume flags (after: asyncmac_cli resume path/to/ckpt.snap or the\n"
      "autosave directory):\n"
      "  --horizon=T    run to T time units instead of the checkpoint's\n"
      "                 recorded horizon\n"
      "  --json / --trace=T / --telemetry=P   as in run mode\n"
      "  --checkpoint-dir=D    keep autosaving into D (cadence comes from\n"
      "                 the checkpoint's own --checkpoint-every)\n"
      "  exit 1 with a typed error (io/truncated/bad-magic/bad-version/\n"
      "  bad-crc/corrupt/mismatch) when the file cannot be resumed\n"
      "\n"
      "fuzz flags (two-token `--flag value` form also accepted):\n"
      "  --seed=S         campaign seed; case K's seed derives from it\n"
      "  --cases=K        generated cases (default 1000)\n"
      "  --jobs=J         worker threads, 0 = all cores (default 0)\n"
      "  --time-budget=T  wall-clock cap in seconds, 0 = unlimited\n"
      "  --protocol=LIST  restrict the generated protocol pool\n"
      "  --no-shrink      skip counterexample minimization\n"
      "  --repro-out=P    failure repro path (default\n"
      "                   asyncmac_fuzz_repro.json)\n"
      "  --repro=FILE     replay a repro file instead of a campaign\n"
      "  --case-seed=X    run the one scenario case seed X derives\n"
      "  --emit-case=I    pin campaign case I as a clean repro\n"
      "  --telemetry=P    stream campaign telemetry as JSONL to P\n"
      "  --checkpoint=P   write a resumable chunk cursor to P; a rerun\n"
      "                   with the same campaign resumes after the last\n"
      "                   completed chunk (docs/CHECKPOINT.md)\n"
      "\n"
      "stats flags:\n"
      "  --top=N        show the top N counters (default 20)\n"
      "\n"
      "serve flags (coordinator; sweep dimensions as in --grid, see\n"
      "docs/DISTRIBUTED.md — stdout and --csv are byte-identical to the\n"
      "same sweep run locally with --grid):\n"
      "  --port=P             listen port; 0 = ephemeral (default 0)\n"
      "  --port-file=PATH     write the bound port to PATH (scripts/CI)\n"
      "  --lease-timeout-ms=T reassign a leased unit after T ms without\n"
      "                       worker liveness (default 10000)\n"
      "  --heartbeat-ms=T     heartbeat cadence asked of workers\n"
      "                       (default 1000)\n"
      "  --seeds=K / --csv=PATH / --checkpoint-dir=D / --telemetry=P\n"
      "                       as in --grid mode\n"
      "  --fuzz --cases=K     distribute a fuzz campaign (chunked cases)\n"
      "                       instead of a grid; --seed seeds it\n"
      "\n"
      "worker flags (joins a coordinator, computes leased units until the\n"
      "sweep completes; safe to kill — its leases are reassigned):\n"
      "  --host=H       coordinator host (default 127.0.0.1)\n"
      "  --port=P       coordinator port (required)\n"
      "  --name=S       worker name for coordinator-side logs\n"
      "\n"
      "live-serve flags (run flags above select the scenario; docs/LIVE.md;\n"
      "stations connect over loopback UDP unless --virtual; the stability\n"
      "verdict goes to stderr, stdout matches run mode byte-for-byte):\n"
      "  --virtual            daemon + stations in-process on a virtual\n"
      "                       clock (deterministic differential mode)\n"
      "  --port=P             UDP listen port; 0 = ephemeral (default 0)\n"
      "  --port-file=PATH     write the bound port to PATH (scripts/CI)\n"
      "  --unit-us=N          wall microseconds per time unit (default\n"
      "                       1000); stations must use the same value\n"
      "  --idle-timeout-ms=T  exit 1 after T ms without a datagram\n"
      "                       (default 30000)\n"
      "  --emu-loss=F         per-datagram drop probability in [0, 1)\n"
      "  --emu-delay-us=N     fixed one-way latency (microseconds)\n"
      "  --emu-jitter-us=N    extra uniform latency in [0, N] us\n"
      "  --emu-seed=S         emulation rng seed (default 1)\n"
      "\n"
      "live-station flags (one protocol automaton joining a live-serve\n"
      "daemon; exits 0 when the daemon fins the run cleanly):\n"
      "  --host=H         daemon host (default 127.0.0.1)\n"
      "  --port=P         daemon UDP port (required)\n"
      "  --id=I           station id in 1..n (required)\n"
      "  --name=S         station name (default station-I)\n"
      "  --unit-us=N      must match the daemon's (default 1000)\n"
      "  --retry-units=T  reply timeout before a retransmit (default 64)\n"
      "  --max-retries=K  unanswered retransmits before giving up\n"
      "                   (default 25)\n"
      "\n"
      "exit codes: 0 success; 1 fuzz violations, failed replay or bad\n"
      "checkpoint; 2 bad usage\n";
  std::exit(0);
}

// Turn telemetry on (all instruments + JSONL streaming to `path`).
// Exits with usage() if the file cannot be opened.
void enable_telemetry_or_die(const std::string& path) {
  if (!telemetry::enable_to_file(path)) usage("cannot write " + path);
}

// ---- strict argv numeric parsing (util/parse.h) -----------------------
// A malformed or overflowing value exits with a usage message instead of
// an uncaught std::sto* exception (std::terminate); trailing garbage
// ("--n=8x") and silently-wrapping u32 overflow ("--r=4294967297" → 1)
// are rejected rather than truncated.

// Largest time-unit count whose tick conversion (units * U) cannot
// overflow a signed 64-bit Tick.
constexpr std::uint64_t kMaxUnitsArg =
    static_cast<std::uint64_t>(INT64_MAX / kTicksPerUnit);

std::uint64_t arg_u64(const std::string& s, const char* what,
                      std::uint64_t max = UINT64_MAX) {
  try {
    return util::parse_u64(s, what, max);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
}

std::uint32_t arg_u32(const std::string& s, const char* what,
                      std::uint32_t max = UINT32_MAX) {
  try {
    return util::parse_u32(s, what, max);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
}

Tick arg_units(const std::string& s, const char* what) {
  return static_cast<Tick>(arg_u64(s, what, kMaxUnitsArg));
}

double arg_finite(const std::string& s, const char* what) {
  try {
    return util::parse_double(s, what);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
}

/// --restrained-k=K[:jam|reject] — at most K concurrent transmissions;
/// over-capacity ones jam (default) or are rejected. Shared by run, grid,
/// serve and live-serve parsing so every mode spells the channel the same
/// way.
void parse_restrained_arg(const std::string& v, Options& opt) {
  const std::size_t colon = v.find(':');
  opt.restrained_k = arg_u32(
      colon == std::string::npos ? v : v.substr(0, colon), "--restrained-k");
  if (colon != std::string::npos) {
    const std::string mode = v.substr(colon + 1);
    if (mode == "jam")
      opt.restrained_jam = true;
    else if (mode == "reject")
      opt.restrained_jam = false;
    else
      usage("--restrained-k mode must be jam or reject, got: " + mode);
  }
}

/// --energy-model=TX:LISTEN:SLEEP — enable per-slot energy accounting
/// with the three integer costs (energy/model.h; docs/ENERGY.md).
void parse_energy_arg(const std::string& v, Options& opt) {
  const std::size_t c1 = v.find(':');
  const std::size_t c2 = c1 == std::string::npos ? c1 : v.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos)
    usage("--energy-model takes TX:LISTEN:SLEEP integer costs");
  opt.energy_enabled = true;
  opt.energy_cost_transmit =
      arg_u64(v.substr(0, c1), "--energy-model transmit cost");
  opt.energy_cost_listen =
      arg_u64(v.substr(c1 + 1, c2 - c1 - 1), "--energy-model listen cost");
  opt.energy_cost_sleep =
      arg_u64(v.substr(c2 + 1), "--energy-model sleep cost");
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--protocol=", 0) == 0)
      opt.protocol = value("--protocol=");
    else if (arg.rfind("--n=", 0) == 0)
      opt.n_list = value("--n=");
    else if (arg.rfind("--r=", 0) == 0)
      opt.r_list = value("--r=");
    else if (arg.rfind("--rho=", 0) == 0)
      opt.rho_list = value("--rho=");
    else if (arg.rfind("--burst=", 0) == 0)
      opt.burst_units = arg_units(value("--burst="), "--burst");
    else if (arg.rfind("--policy=", 0) == 0)
      opt.policy = value("--policy=");
    else if (arg.rfind("--pattern=", 0) == 0)
      opt.pattern = value("--pattern=");
    else if (arg.rfind("--horizon=", 0) == 0)
      opt.horizon_units = arg_units(value("--horizon="), "--horizon");
    else if (arg.rfind("--seed=", 0) == 0)
      opt.seed = arg_u64(value("--seed="), "--seed");
    else if (arg == "--json")
      opt.json = true;
    else if (arg.rfind("--trace=", 0) == 0)
      opt.trace_units = arg_units(value("--trace="), "--trace");
    else if (arg == "--msr")
      opt.msr = true;
    else if (arg == "--grid")
      opt.grid = true;
    else if (arg.rfind("--seeds=", 0) == 0)
      opt.seeds = static_cast<int>(
          arg_u32(value("--seeds="), "--seeds", INT32_MAX));
    else if (arg.rfind("--jobs=", 0) == 0)
      opt.jobs = arg_u32(value("--jobs="), "--jobs");
    else if (arg.rfind("--cohort=", 0) == 0)
      opt.cohort = arg_u32(value("--cohort="), "--cohort");
    else if (arg.rfind("--csv=", 0) == 0)
      opt.csv_path = value("--csv=");
    else if (arg.rfind("--telemetry=", 0) == 0)
      opt.telemetry_path = value("--telemetry=");
    else if (arg.rfind("--checkpoint-every=", 0) == 0)
      opt.checkpoint_every =
          arg_u64(value("--checkpoint-every="), "--checkpoint-every");
    else if (arg.rfind("--checkpoint-dir=", 0) == 0)
      opt.checkpoint_dir = value("--checkpoint-dir=");
    else if (arg.rfind("--restrained-k=", 0) == 0)
      parse_restrained_arg(value("--restrained-k="), opt);
    else if (arg.rfind("--energy-model=", 0) == 0)
      parse_energy_arg(value("--energy-model="), opt);
    else if (arg == "--help" || arg == "-h")
      print_help();
    else
      usage("unknown argument: " + arg);
  }
  if (opt.seeds < 1) usage("--seeds must be >= 1");
  if (opt.checkpoint_every > 0 && opt.checkpoint_dir.empty())
    usage("--checkpoint-every needs --checkpoint-dir");
  if (opt.checkpoint_every > 0 && (opt.grid || opt.msr))
    usage("--checkpoint-every applies to single runs only (grid mode "
          "checkpoints per cell via --checkpoint-dir)");
  if (!opt.checkpoint_dir.empty() && opt.msr)
    usage("--checkpoint-dir is not supported in --msr mode");
  if (!opt.checkpoint_dir.empty() && !opt.grid && opt.checkpoint_every == 0)
    usage("single-run --checkpoint-dir needs --checkpoint-every");
  if (!opt.grid) {
    // Single-run (and MSR) modes take scalar dimensions.
    if (opt.n_list.find(',') != std::string::npos ||
        opt.r_list.find(',') != std::string::npos ||
        opt.rho_list.find(',') != std::string::npos ||
        opt.protocol.find(',') != std::string::npos ||
        opt.policy.find(',') != std::string::npos)
      usage("comma lists need --grid");
    opt.n = arg_u32(opt.n_list, "--n");
    opt.r = arg_u32(opt.r_list, "--r");
    // arg_finite already rejects nan/inf (which would pass the range
    // check below: comparisons against NaN are all false).
    opt.rho = arg_finite(opt.rho_list, "--rho");
    if (opt.n < 1) usage("--n must be >= 1");
    if (opt.r < 1) usage("--r must be >= 1");
    if (opt.rho < 0 || opt.rho > 1) usage("--rho must lie in [0, 1]");
  }
  return opt;
}

/// Grid dimensions from the parsed comma-lists — shared by --grid and
/// `serve` so a distributed sweep runs exactly the spec a local one
/// would (stdout parity depends on it).
analysis::ExperimentSpec make_grid_spec(const Options& opt) {
  analysis::ExperimentSpec spec;
  spec.protocols = split_list(opt.protocol);
  spec.slot_policies = split_list(opt.policy);
  spec.station_counts.clear();
  for (const auto& v : split_list(opt.n_list))
    spec.station_counts.push_back(arg_u32(v, "--n"));
  spec.bounds_r.clear();
  for (const auto& v : split_list(opt.r_list))
    spec.bounds_r.push_back(arg_u32(v, "--r"));
  spec.rho_percents.clear();
  for (const auto& v : split_list(opt.rho_list)) {
    // arg_finite rejects nan/inf — a NaN in the list would sail through
    // the range check below.
    const double rho = arg_finite(v, "--rho");
    if (rho < 0 || rho > 1) usage("--rho values must lie in [0, 1]");
    spec.rho_percents.push_back(static_cast<int>(std::lround(rho * 100)));
  }
  spec.burst_units = opt.burst_units;
  spec.horizon_units = opt.horizon_units;
  spec.seed = opt.seed;
  spec.seeds = opt.seeds;
  spec.jobs = opt.jobs;
  spec.cohort = opt.cohort;
  spec.restrained_k = opt.restrained_k;
  spec.restrained_jam = opt.restrained_jam;
  spec.energy_enabled = opt.energy_enabled;
  spec.energy_cost_transmit = opt.energy_cost_transmit;
  spec.energy_cost_listen = opt.energy_cost_listen;
  spec.energy_cost_sleep = opt.energy_cost_sleep;
  spec.checkpoint_dir = opt.checkpoint_dir;
  return spec;
}

/// Table + optional CSV, shared by --grid and `serve`: the distributed
/// path must produce byte-identical stdout and CSV (the sweep-smoke CI
/// job diffs both against a single-process control).
int print_grid_results(const std::vector<analysis::ExperimentRecord>& records,
                       const std::string& csv_path, bool energy_columns) {
  std::cout << analysis::to_table(records);
  if (!csv_path.empty()) {
    analysis::write_csv(records, csv_path, energy_columns);
    std::cout << "(" << records.size() << " records written to "
              << csv_path << ")\n";
  }
  return 0;
}

int run_experiment_grid(const Options& opt) {
  const analysis::ExperimentSpec spec = make_grid_spec(opt);
  std::vector<analysis::ExperimentRecord> records;
  try {
    records = analysis::run_grid(spec);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  } catch (const snapshot::SnapshotError& e) {
    std::cerr << "asyncmac_cli: grid checkpoint in " << opt.checkpoint_dir
              << ": " << e.what() << "\n";
    return 1;
  }
  return print_grid_results(records, opt.csv_path, spec.energy_enabled);
}

std::unique_ptr<sim::SlotPolicy> make_policy(const Options& opt) {
  try {
    return adversary::make_slot_policy(opt.policy, opt.n, opt.r, opt.seed);
  } catch (const std::invalid_argument&) {
    usage("unknown policy: " + opt.policy);
  }
}

std::unique_ptr<sim::InjectionPolicy> make_injector(const Options& opt,
                                                    util::Ratio rho) {
  adversary::InjectorSpec spec;
  spec.rho = rho;
  spec.burst_ticks = opt.burst_units * U;
  spec.seed = opt.seed + 1;
  if (opt.pattern == "maxqueue") {
    spec.kind = "maxqueue";
  } else {
    spec.kind = "saturating";
    spec.pattern = opt.pattern;
  }
  try {
    return adversary::make_injector(spec);
  } catch (const std::invalid_argument&) {
    usage("unknown pattern: " + opt.pattern);
  }
}

/// The single-run configuration as a snapshot::RunSpec, so a checkpointed
/// run embeds exactly what `resume` needs to rebuild the engine. Mirrors
/// make_policy/make_injector/build_engine below (which --msr keeps using
/// with a swept rho/seed).
snapshot::RunSpec make_run_spec(const Options& opt, util::Ratio rho) {
  snapshot::RunSpec spec;
  spec.protocol = opt.protocol;
  spec.n = opt.n;
  spec.bound_r = opt.r;
  spec.slot_policy = opt.policy;
  spec.has_injector = true;
  spec.injector.rho = rho;
  spec.injector.burst_ticks = opt.burst_units * U;
  spec.injector.seed = opt.seed + 1;
  if (opt.pattern == "maxqueue") {
    spec.injector.kind = "maxqueue";
  } else {
    spec.injector.kind = "saturating";
    spec.injector.pattern = opt.pattern;
  }
  spec.seed = opt.seed;
  spec.horizon_units = opt.horizon_units;
  spec.record_trace = opt.trace_units > 0;
  spec.checkpoint_interval = opt.checkpoint_every;
  spec.restrained_k = opt.restrained_k;
  spec.restrained_jam = opt.restrained_jam;
  spec.energy_enabled = opt.energy_enabled;
  spec.energy_cost_transmit = opt.energy_cost_transmit;
  spec.energy_cost_listen = opt.energy_cost_listen;
  spec.energy_cost_sleep = opt.energy_cost_sleep;
  return spec;
}

/// Stats text/JSON + optional trace render, shared between run mode,
/// `resume` and `live-serve` (the determinism contract makes their
/// output identical for the same effective run — the resume smoke test
/// and the live-smoke differential both diff it byte-for-byte, which is
/// why this takes the result components rather than an engine: the live
/// daemon produces the same stats/ledger/trace without one).
void report_run(const snapshot::RunSpec& spec, double rho,
                const metrics::RunStats& s, const channel::LedgerStats& ch,
                const std::vector<trace::SlotRecord>& slots, bool json,
                Tick trace_units,
                const energy::EnergyMeter* meter = nullptr) {
  // The energy block (text and JSON) is emitted only for enabled runs, so
  // a run without --energy-model prints byte-identical output to builds
  // that predate the energy subsystem.
  const energy::EnergyModel model = spec.energy();
  const bool energy_on = meter != nullptr && model.enabled;
  if (json) {
    std::cout << metrics::to_json(s, &ch, true, energy_on ? meter : nullptr,
                                  energy_on ? &model : nullptr);
  } else {
    std::cout << "protocol=" << spec.protocol << " n=" << spec.n
              << " R=" << spec.bound_r << " rho=" << rho
              << " policy=" << spec.slot_policy << " horizon="
              << spec.horizon_units << "\n"
              << "  injected   " << s.injected_packets << " packets ("
              << to_units(s.injected_cost) << " cost units)\n"
              << "  delivered  " << s.delivered_packets << "\n"
              << "  queued     " << s.queued_packets << " (max cost "
              << to_units(s.max_queued_cost) << " units)\n"
              << "  channel    " << ch.transmissions << " transmissions, "
              << ch.successful << " successful, " << ch.collided
              << " collided, " << ch.control_transmissions << " control\n";
    if (!s.latency.empty())
      std::cout << "  latency    p50 " << to_units(s.latency.quantile(0.5))
                << "  p99 " << to_units(s.latency.quantile(0.99))
                << "  max " << to_units(s.latency.max()) << " (units)\n";
    if (energy_on) {
      std::cout << "  energy     " << meter->total_charge(model)
                << " total (peak station "
                << meter->peak_station_charge(model) << ", costs "
                << model.cost_transmit << ":" << model.cost_listen << ":"
                << model.cost_sleep << ")";
      if (s.delivered_packets > 0)
        std::cout << ", "
                  << static_cast<double>(meter->total_charge(model)) /
                         static_cast<double>(s.delivered_packets)
                  << " per delivery";
      std::cout << "\n";
    }
  }
  if (trace_units > 0) {
    trace::RenderOptions r;
    r.to = trace_units * U;
    std::cout << "\n" << trace::render_schedule(slots, r);
  }
}

std::unique_ptr<sim::Engine> build_engine(const Options& opt,
                                          util::Ratio rho,
                                          std::uint64_t seed) {
  sim::EngineConfig cfg;
  cfg.n = opt.n;
  cfg.bound_r = opt.r;
  cfg.seed = seed;
  cfg.record_trace = opt.trace_units > 0;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  try {
    ps = analysis::make_protocols(opt.protocol, opt.n);
  } catch (const std::invalid_argument&) {
    usage("unknown protocol: " + opt.protocol);
  }
  return std::make_unique<sim::Engine>(cfg, std::move(ps), make_policy(opt),
                                       make_injector(opt, rho));
}

int run_msr(const Options& opt) {
  analysis::MsrConfig cfg;
  cfg.probe.horizon = opt.horizon_units * U;
  cfg.base_seed = opt.seed;
  const auto res = analysis::estimate_msr(
      [&](util::Ratio rho, std::uint64_t seed) {
        return build_engine(opt, rho, seed);
      },
      cfg);
  std::cout << "protocol=" << opt.protocol << " n=" << opt.n
            << " R=" << opt.r << " policy=" << opt.policy
            << "  measured MSR = " << res.msr_pct << "% (" << res.probes
            << " probes)\n";
  return 0;
}

// ------------------------------------------------------------------- fuzz

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t cases = 1000;
  unsigned jobs = 0;
  int time_budget = 0;
  bool shrink = true;
  std::vector<std::string> protocols;
  std::string repro_out = "asyncmac_fuzz_repro.json";
  std::string repro_in;       // replay mode
  std::uint64_t case_seed = 0;   // single-case mode (0 = off)
  bool has_emit_case = false;
  std::uint64_t emit_case = 0;   // corpus-pinning mode
  std::string telemetry_path;
  std::string checkpoint_path;   // campaign cursor file
};

FuzzOptions parse_fuzz_args(int argc, char** argv) {
  FuzzOptions opt;
  // Accept both --flag=value and the two-token --flag value form.
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.push_back(arg);
      args.push_back(argv[++i]);
    } else {
      args.push_back(arg);
    }
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage(flag + " needs a value");
      return args[++i];
    };
    if (flag == "--seed")
      opt.seed = arg_u64(value(), "--seed");
    else if (flag == "--cases")
      opt.cases = arg_u64(value(), "--cases");
    else if (flag == "--jobs")
      opt.jobs = arg_u32(value(), "--jobs");
    else if (flag == "--time-budget")
      opt.time_budget = static_cast<int>(
          arg_u32(value(), "--time-budget", INT32_MAX));
    else if (flag == "--protocol")
      opt.protocols = split_list(value());
    else if (flag == "--no-shrink")
      opt.shrink = false;
    else if (flag == "--repro-out")
      opt.repro_out = value();
    else if (flag == "--repro")
      opt.repro_in = value();
    else if (flag == "--case-seed")
      opt.case_seed = arg_u64(value(), "--case-seed");
    else if (flag == "--telemetry")
      opt.telemetry_path = value();
    else if (flag == "--checkpoint")
      opt.checkpoint_path = value();
    else if (flag == "--help" || flag == "-h")
      print_help();
    else if (flag == "--emit-case") {
      opt.has_emit_case = true;
      opt.emit_case = arg_u64(value(), "--emit-case");
    } else
      usage("unknown fuzz argument: " + flag);
  }
  if (opt.cases < 1) usage("--cases must be >= 1");
  if (opt.time_budget < 0) usage("--time-budget must be >= 0");
  return opt;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) usage("cannot write " + path);
  out << text;
}

int replay_repro_file(const FuzzOptions& opt) {
  verify::Repro repro;
  try {
    repro = verify::parse_repro_json(read_text_file(opt.repro_in));
  } catch (const std::invalid_argument& e) {
    usage(std::string("bad repro file: ") + e.what());
  }
  const auto outcome = verify::replay_repro(repro);
  std::cout << "repro: " << repro.scenario.describe() << "\n"
            << "recorded: "
            << (repro.violation.empty() ? std::string("clean")
                                        : repro.violation)
            << "\n"
            << "replay:   "
            << (outcome.case_result.ok ? std::string("clean")
                                       : outcome.case_result.what)
            << "\n";
  if (!repro.trace_text.empty())
    std::cout << "trace:    "
              << (outcome.trace_matches ? "byte-identical" : "DIVERGED")
              << "\n";
  std::cout << (outcome.reproduced ? "REPRODUCED\n" : "NOT REPRODUCED\n");
  return outcome.reproduced ? 0 : 1;
}

int run_single_case(std::uint64_t case_seed,
                    const std::vector<std::string>& pool) {
  const verify::Scenario s =
      pool.empty() ? verify::scenario_from_seed(case_seed)
                   : verify::scenario_from_seed(case_seed, pool);
  std::cout << "case: " << s.describe() << "\n";
  const auto r = verify::run_case(s);
  if (r.ok) {
    std::cout << "clean\n";
    return 0;
  }
  std::cout << "VIOLATION: " << r.what << "\n";
  return 1;
}

int emit_corpus_case(const FuzzOptions& opt) {
  const verify::ScenarioGen gen(opt.seed, opt.protocols);
  const verify::Scenario s = gen.generate(opt.emit_case);
  const auto r = verify::run_case(s);
  if (!r.ok) {
    std::cerr << "refusing to pin a violating case: " << r.what << "\n";
    return 1;
  }
  write_text_file(opt.repro_out, verify::to_json(verify::make_repro(s, "")));
  std::cout << "pinned case " << opt.emit_case << " (seed " << s.case_seed
            << ") to " << opt.repro_out << "\n  " << s.describe() << "\n";
  return 0;
}

int run_fuzz(int argc, char** argv) {
  const FuzzOptions opt = parse_fuzz_args(argc, argv);
  if (!opt.telemetry_path.empty())
    enable_telemetry_or_die(opt.telemetry_path);
  if (!opt.repro_in.empty()) return replay_repro_file(opt);
  if (opt.case_seed != 0) return run_single_case(opt.case_seed, opt.protocols);
  if (opt.has_emit_case) return emit_corpus_case(opt);

  verify::CampaignConfig cfg;
  cfg.seed = opt.seed;
  cfg.cases = opt.cases;
  cfg.jobs = opt.jobs;
  cfg.time_budget_seconds = opt.time_budget;
  cfg.shrink = opt.shrink;
  cfg.protocols = opt.protocols;
  cfg.checkpoint_path = opt.checkpoint_path;

  std::cout << "fuzz: seed=" << opt.seed << " cases=" << opt.cases
            << " jobs=" << opt.jobs << "\n";
  verify::CampaignResult result;
  try {
    result = verify::run_campaign(cfg);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  } catch (const snapshot::SnapshotError& e) {
    std::cerr << "asyncmac_cli fuzz: " << opt.checkpoint_path << ": "
              << e.what() << "\n";
    return 1;
  }
  std::cout << verify::summarize(result);
  if (result.failures.empty()) return 0;

  // Write the minimal counterexample (or the raw first failure when
  // shrinking is off) as a replayable repro file.
  const verify::Scenario& worst =
      result.shrunk_valid ? result.shrunk : result.failures.front().scenario;
  const std::string& violation = result.shrunk_valid
                                     ? result.shrunk_violation
                                     : result.failures.front().verdict.violation;
  write_text_file(opt.repro_out,
                  verify::to_json(verify::make_repro(worst, violation)));
  std::cout << "repro written to " << opt.repro_out
            << " (replay: asyncmac_cli fuzz --repro " << opt.repro_out
            << ")\n";
  return 1;
}

// ------------------------------------------------------------------ stats

int run_stats(int argc, char** argv) {
  std::string path;
  std::size_t top = 20;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0)
      top = arg_u64(arg.substr(6), "--top");
    else if (arg.rfind("--", 0) == 0)
      usage("unknown stats argument: " + arg);
    else if (path.empty())
      path = arg;
    else
      usage("stats takes one telemetry file");
  }
  if (path.empty()) usage("stats needs a telemetry JSONL file");
  std::ifstream in(path);
  if (!in) usage("cannot read " + path);
  try {
    const auto summary = telemetry::summarize_stream(in);
    std::cout << telemetry::render_summary(summary, top);
  } catch (const std::invalid_argument& e) {
    std::cerr << "asyncmac_cli stats: " << path << ": " << e.what() << "\n";
    return 1;
  }
  return 0;
}

// ----------------------------------------------------------------- resume

int run_resume(int argc, char** argv) {
  std::string path;
  Tick horizon_units = -1;  // -1 = use the checkpoint's recorded horizon
  bool json = false;
  Tick trace_units = 0;
  std::string telemetry_path;
  std::string checkpoint_dir;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--horizon=", 0) == 0)
      horizon_units = arg_units(arg.substr(10), "--horizon");
    else if (arg == "--json")
      json = true;
    else if (arg.rfind("--trace=", 0) == 0)
      trace_units = arg_units(arg.substr(8), "--trace");
    else if (arg.rfind("--telemetry=", 0) == 0)
      telemetry_path = arg.substr(12);
    else if (arg.rfind("--checkpoint-dir=", 0) == 0)
      checkpoint_dir = arg.substr(17);
    else if (arg == "--help" || arg == "-h")
      print_help();
    else if (arg.rfind("--", 0) == 0)
      usage("unknown resume argument: " + arg);
    else if (path.empty())
      path = arg;
    else
      usage("resume takes one checkpoint file");
  }
  if (path.empty()) usage("resume needs a checkpoint file or directory");
  if (!telemetry_path.empty()) enable_telemetry_or_die(telemetry_path);

  // A directory means "the newest autosave in it": AutoSaver names files
  // ckpt-NNNNNN.snap with a monotone counter, so the lexicographically
  // greatest one is the latest snapshot.
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::string best;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("ckpt-", 0) == 0 && name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".snap") == 0 &&
          (best.empty() || name > best))
        best = (std::filesystem::path(path) / name).string();
    }
    if (best.empty()) {
      std::cerr << "asyncmac_cli resume: " << path
                << ": no ckpt-*.snap files\n";
      return 1;
    }
    path = best;
  }

  snapshot::ResumedRun run;
  try {
    run = snapshot::resume_checkpoint(path);
  } catch (const snapshot::SnapshotError& e) {
    std::cerr << "asyncmac_cli resume: " << path << ": " << e.what() << "\n";
    return 1;
  }
  snapshot::RunSpec spec = run.spec;
  if (horizon_units >= 0) spec.horizon_units = horizon_units;

  // Keep autosaving when asked to (the cadence is baked into the
  // checkpoint; a spec without one cannot re-arm from here).
  std::shared_ptr<snapshot::AutoSaver> saver;
  if (!checkpoint_dir.empty()) {
    if (spec.checkpoint_interval == 0)
      usage("this checkpoint was written without --checkpoint-every; "
            "--checkpoint-dir cannot re-arm autosaving");
    saver = std::make_shared<snapshot::AutoSaver>(checkpoint_dir, spec);
    run.engine->set_checkpoint_sink(
        [saver](const sim::Engine& e) { (*saver)(e); });
  }

  std::cerr << "resumed " << spec.protocol << " n=" << spec.n
            << " from " << path << " at t=" << to_units(run.engine->now())
            << " units\n";
  try {
    run.engine->run(sim::until(spec.horizon_units * U));
  } catch (const snapshot::SnapshotError& e) {
    std::cerr << "asyncmac_cli resume: autosave failed: " << e.what() << "\n";
    return 1;
  }
  telemetry::emit(
      "run.done",
      {{"protocol", spec.protocol},
       {"injected", run.engine->stats().injected_packets},
       {"delivered", run.engine->stats().delivered_packets}});
  const double rho =
      spec.has_injector ? spec.injector.rho.to_double() : 0.0;
  report_run(spec, rho, run.engine->stats(), run.engine->channel_stats(),
             run.engine->trace().slots(), json, trace_units,
             &run.engine->energy_meter());
  return 0;
}

// ------------------------------------------------------- serve / worker

struct ServeOptions {
  Options grid;  ///< sweep dimensions (comma lists) + --csv/--checkpoint-dir
  bool fuzz = false;
  std::uint64_t cases = 1000;
  std::uint16_t port = 0;  ///< 0 = ephemeral
  std::string port_file;
  std::uint64_t lease_timeout_ms = 10000;
  std::uint64_t heartbeat_ms = 1000;
};

ServeOptions parse_serve_args(int argc, char** argv) {
  ServeOptions opt;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--protocol=", 0) == 0)
      opt.grid.protocol = value("--protocol=");
    else if (arg.rfind("--n=", 0) == 0)
      opt.grid.n_list = value("--n=");
    else if (arg.rfind("--r=", 0) == 0)
      opt.grid.r_list = value("--r=");
    else if (arg.rfind("--rho=", 0) == 0)
      opt.grid.rho_list = value("--rho=");
    else if (arg.rfind("--burst=", 0) == 0)
      opt.grid.burst_units = arg_units(value("--burst="), "--burst");
    else if (arg.rfind("--policy=", 0) == 0)
      opt.grid.policy = value("--policy=");
    else if (arg.rfind("--horizon=", 0) == 0)
      opt.grid.horizon_units = arg_units(value("--horizon="), "--horizon");
    else if (arg.rfind("--seed=", 0) == 0)
      opt.grid.seed = arg_u64(value("--seed="), "--seed");
    else if (arg.rfind("--seeds=", 0) == 0)
      opt.grid.seeds = static_cast<int>(
          arg_u32(value("--seeds="), "--seeds", INT32_MAX));
    else if (arg.rfind("--csv=", 0) == 0)
      opt.grid.csv_path = value("--csv=");
    else if (arg.rfind("--checkpoint-dir=", 0) == 0)
      opt.grid.checkpoint_dir = value("--checkpoint-dir=");
    else if (arg.rfind("--telemetry=", 0) == 0)
      opt.grid.telemetry_path = value("--telemetry=");
    else if (arg.rfind("--restrained-k=", 0) == 0)
      parse_restrained_arg(value("--restrained-k="), opt.grid);
    else if (arg.rfind("--energy-model=", 0) == 0)
      parse_energy_arg(value("--energy-model="), opt.grid);
    else if (arg == "--fuzz")
      opt.fuzz = true;
    else if (arg.rfind("--cases=", 0) == 0)
      opt.cases = arg_u64(value("--cases="), "--cases");
    else if (arg.rfind("--port=", 0) == 0)
      opt.port = static_cast<std::uint16_t>(
          arg_u32(value("--port="), "--port", 65535));
    else if (arg.rfind("--port-file=", 0) == 0)
      opt.port_file = value("--port-file=");
    else if (arg.rfind("--lease-timeout-ms=", 0) == 0)
      opt.lease_timeout_ms =
          arg_u64(value("--lease-timeout-ms="), "--lease-timeout-ms");
    else if (arg.rfind("--heartbeat-ms=", 0) == 0)
      opt.heartbeat_ms = arg_u64(value("--heartbeat-ms="), "--heartbeat-ms");
    else if (arg == "--help" || arg == "-h")
      print_help();
    else
      usage("unknown serve argument: " + arg);
  }
  if (opt.grid.seeds < 1) usage("--seeds must be >= 1");
  if (opt.lease_timeout_ms == 0) usage("--lease-timeout-ms must be > 0");
  if (opt.cases < 1) usage("--cases must be >= 1");
  return opt;
}

int run_serve(int argc, char** argv) {
  const ServeOptions opt = parse_serve_args(argc, argv);
  if (!opt.grid.telemetry_path.empty())
    enable_telemetry_or_die(opt.grid.telemetry_path);

  sweep::ServeOptions srv;
  srv.port = opt.port;
  srv.coord.lease_timeout_ms = opt.lease_timeout_ms;
  srv.coord.heartbeat_ms = opt.heartbeat_ms;
  if (opt.fuzz) {
    srv.coord.job.kind = sweep::JobKind::kFuzz;
    srv.coord.job.fuzz.seed = opt.grid.seed;
    srv.coord.job.fuzz.cases = opt.cases;
  } else {
    srv.coord.job.kind = sweep::JobKind::kGrid;
    srv.coord.job.grid = make_grid_spec(opt.grid);
    srv.coord.checkpoint_dir = opt.grid.checkpoint_dir;
  }
  // Progress and the bound port go to stderr: stdout stays byte-identical
  // to the same sweep run locally with --grid.
  srv.on_listening = [&](std::uint16_t port) {
    std::cerr << "serve: listening on port " << port << "\n";
    if (!opt.port_file.empty()) {
      std::ofstream out(opt.port_file);
      out << port << "\n";
    }
  };

  sweep::ServeOutcome outcome;
  try {
    outcome = sweep::serve(srv);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  } catch (const snapshot::SnapshotError& e) {
    std::cerr << "asyncmac_cli serve: " << e.what() << "\n";
    return 1;
  } catch (const std::runtime_error& e) {
    std::cerr << "asyncmac_cli serve: " << e.what() << "\n";
    return 1;
  }

  auto& reg = telemetry::Registry::global();
  telemetry::emit(
      "sweep.done",
      {{"leases", reg.counter("sweep.leases").value()},
       {"reassigns", reg.counter("sweep.reassigns").value()},
       {"dup_results", reg.counter("sweep.dup_results").value()},
       {"worker_deaths", reg.counter("sweep.worker_deaths").value()}});

  if (opt.fuzz) {
    // Same summary run_campaign prints for these verdicts (shrinking is
    // coordinator-local work a distributed run does not repeat).
    verify::CampaignResult result;
    result.cases_requested = opt.cases;
    result.cases_run = outcome.verdicts.size();
    result.verdicts = outcome.verdicts;
    for (const auto& v : result.verdicts)
      if (!v.ok)
        result.failures.push_back(
            {v, verify::scenario_from_seed(v.case_seed)});
    std::cout << verify::summarize(result);
    return result.failures.empty() ? 0 : 1;
  }
  return print_grid_results(outcome.records, opt.grid.csv_path,
                            opt.grid.energy_enabled);
}

int run_worker(int argc, char** argv) {
  sweep::WorkerOptions opt;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0)
      opt.host = arg.substr(7);
    else if (arg.rfind("--port=", 0) == 0)
      opt.port = static_cast<std::uint16_t>(
          arg_u32(arg.substr(7), "--port", 65535));
    else if (arg.rfind("--name=", 0) == 0)
      opt.name = arg.substr(7);
    else if (arg == "--help" || arg == "-h")
      print_help();
    else
      usage("unknown worker argument: " + arg);
  }
  if (opt.port == 0) usage("worker needs --port");
  try {
    return sweep::run_worker(opt);
  } catch (const std::runtime_error& e) {
    std::cerr << "asyncmac_cli worker: " << e.what() << "\n";
    return 1;
  }
}

// ------------------------------------------------ live-serve / live-station

struct LiveServeOptions {
  Options run;  ///< scenario dimensions (scalar) + --json/--trace/--telemetry
  bool virtual_mode = false;
  std::uint16_t port = 0;  ///< 0 = ephemeral
  std::string port_file;
  std::uint64_t unit_us = 1000;
  std::uint64_t idle_timeout_ms = 30000;
  double emu_loss = 0.0;
  std::uint64_t emu_delay_us = 0;
  std::uint64_t emu_jitter_us = 0;
  std::uint64_t emu_seed = 1;
};

LiveServeOptions parse_live_serve_args(int argc, char** argv) {
  LiveServeOptions opt;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--protocol=", 0) == 0)
      opt.run.protocol = value("--protocol=");
    else if (arg.rfind("--n=", 0) == 0)
      opt.run.n_list = value("--n=");
    else if (arg.rfind("--r=", 0) == 0)
      opt.run.r_list = value("--r=");
    else if (arg.rfind("--rho=", 0) == 0)
      opt.run.rho_list = value("--rho=");
    else if (arg.rfind("--burst=", 0) == 0)
      opt.run.burst_units = arg_units(value("--burst="), "--burst");
    else if (arg.rfind("--policy=", 0) == 0)
      opt.run.policy = value("--policy=");
    else if (arg.rfind("--pattern=", 0) == 0)
      opt.run.pattern = value("--pattern=");
    else if (arg.rfind("--horizon=", 0) == 0)
      opt.run.horizon_units = arg_units(value("--horizon="), "--horizon");
    else if (arg.rfind("--seed=", 0) == 0)
      opt.run.seed = arg_u64(value("--seed="), "--seed");
    else if (arg == "--json")
      opt.run.json = true;
    else if (arg.rfind("--trace=", 0) == 0)
      opt.run.trace_units = arg_units(value("--trace="), "--trace");
    else if (arg.rfind("--telemetry=", 0) == 0)
      opt.run.telemetry_path = value("--telemetry=");
    else if (arg.rfind("--restrained-k=", 0) == 0)
      parse_restrained_arg(value("--restrained-k="), opt.run);
    else if (arg.rfind("--energy-model=", 0) == 0)
      parse_energy_arg(value("--energy-model="), opt.run);
    else if (arg == "--virtual")
      opt.virtual_mode = true;
    else if (arg.rfind("--port=", 0) == 0)
      opt.port = static_cast<std::uint16_t>(
          arg_u32(value("--port="), "--port", 65535));
    else if (arg.rfind("--port-file=", 0) == 0)
      opt.port_file = value("--port-file=");
    else if (arg.rfind("--unit-us=", 0) == 0)
      opt.unit_us = arg_u64(value("--unit-us="), "--unit-us");
    else if (arg.rfind("--idle-timeout-ms=", 0) == 0)
      opt.idle_timeout_ms =
          arg_u64(value("--idle-timeout-ms="), "--idle-timeout-ms");
    else if (arg.rfind("--emu-loss=", 0) == 0)
      opt.emu_loss = arg_finite(value("--emu-loss="), "--emu-loss");
    else if (arg.rfind("--emu-delay-us=", 0) == 0)
      opt.emu_delay_us = arg_u64(value("--emu-delay-us="), "--emu-delay-us");
    else if (arg.rfind("--emu-jitter-us=", 0) == 0)
      opt.emu_jitter_us = arg_u64(value("--emu-jitter-us="), "--emu-jitter-us");
    else if (arg.rfind("--emu-seed=", 0) == 0)
      opt.emu_seed = arg_u64(value("--emu-seed="), "--emu-seed");
    else if (arg == "--help" || arg == "-h")
      print_help();
    else
      usage("unknown live-serve argument: " + arg);
  }
  // Scalar scenario dimensions with the same validation as run mode (a
  // live daemon emulates exactly one run).
  if (opt.run.n_list.find(',') != std::string::npos ||
      opt.run.r_list.find(',') != std::string::npos ||
      opt.run.rho_list.find(',') != std::string::npos ||
      opt.run.protocol.find(',') != std::string::npos ||
      opt.run.policy.find(',') != std::string::npos)
    usage("live-serve takes scalar dimensions, not comma lists");
  opt.run.n = arg_u32(opt.run.n_list, "--n");
  opt.run.r = arg_u32(opt.run.r_list, "--r");
  // arg_finite already rejects nan/inf (comparisons against NaN are all
  // false, so they would sail through the range check).
  opt.run.rho = arg_finite(opt.run.rho_list, "--rho");
  if (opt.run.n < 1) usage("--n must be >= 1");
  if (opt.run.r < 1) usage("--r must be >= 1");
  if (opt.run.rho < 0 || opt.run.rho > 1) usage("--rho must lie in [0, 1]");
  if (opt.emu_loss < 0 || opt.emu_loss >= 1)
    usage("--emu-loss must lie in [0, 1)");
  if (opt.unit_us < 1) usage("--unit-us must be >= 1");
  if (opt.idle_timeout_ms < 1) usage("--idle-timeout-ms must be > 0");
  return opt;
}

/// Wall microseconds -> virtual-clock ticks under --unit-us.
Tick emu_us_to_ticks(std::uint64_t us, std::uint64_t unit_us) {
  return static_cast<Tick>(us) * U / static_cast<Tick>(unit_us);
}

int run_live_serve(int argc, char** argv) {
  const LiveServeOptions opt = parse_live_serve_args(argc, argv);
  if (!opt.run.telemetry_path.empty())
    enable_telemetry_or_die(opt.run.telemetry_path);

  const auto rho = util::Ratio::from_double(opt.run.rho);
  live::DaemonConfig dc;
  dc.spec = make_run_spec(opt.run, rho);
  dc.spec.checkpoint_interval = 0;  // live runs do not autosave

  if (opt.virtual_mode) {
    // Whole stack in-process on the virtual clock: deterministic, and
    // stdout is byte-identical to the same scenario in run mode (the
    // live-smoke CI job diffs the two).
    live::VirtualRunOptions vopt;
    vopt.knobs.loss = opt.emu_loss;
    vopt.knobs.delay = emu_us_to_ticks(opt.emu_delay_us, opt.unit_us);
    vopt.knobs.jitter = emu_us_to_ticks(opt.emu_jitter_us, opt.unit_us);
    vopt.knobs.seed = opt.emu_seed;
    live::VirtualRunReport rep;
    try {
      rep = live::run_virtual(dc.spec, vopt);
    } catch (const std::invalid_argument& e) {
      usage(e.what());
    }
    if (rep.daemon_failed) {
      std::cerr << "asyncmac_cli live-serve: run poisoned: " << rep.reason
                << "\n";
      return 1;
    }
    if (!rep.completed || rep.station_exit_max != 0) {
      std::cerr << "asyncmac_cli live-serve: virtual run did not complete\n";
      return 1;
    }
    telemetry::emit("live.done",
                    {{"protocol", dc.spec.protocol},
                     {"injected", rep.stats.injected_packets},
                     {"delivered", rep.stats.delivered_packets}});
    report_run(dc.spec, opt.run.rho, rep.stats, rep.channel, rep.trace,
               opt.run.json, opt.run.trace_units, &rep.energy);
    // Verdict on stderr: stdout must stay identical to run mode, which
    // has no stability probe.
    std::cerr << "live: verdict=" << analysis::to_string(rep.verdict) << " ("
              << rep.samples.size() << " samples)\n";
    return 0;
  }

  std::unique_ptr<live::Daemon> daemon;
  try {
    daemon = std::make_unique<live::Daemon>(dc);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  live::UdpServeOptions uopt;
  uopt.port = opt.port;
  uopt.port_file = opt.port_file;
  uopt.unit_us = opt.unit_us;
  uopt.idle_timeout_ms = opt.idle_timeout_ms;
  uopt.emu_loss = opt.emu_loss;
  uopt.emu_delay_us = opt.emu_delay_us;
  uopt.emu_jitter_us = opt.emu_jitter_us;
  uopt.emu_seed = opt.emu_seed;
  uopt.on_listening = [](std::uint16_t port) {
    std::cerr << "live-serve: listening on UDP port " << port << "\n";
  };
  std::string err;
  const int rc = live::serve_udp(*daemon, uopt, &err);
  if (rc != 0) {
    std::cerr << "asyncmac_cli live-serve: " << err << "\n";
    return rc;
  }
  telemetry::emit("live.done",
                  {{"protocol", dc.spec.protocol},
                   {"injected", daemon->stats().injected_packets},
                   {"delivered", daemon->stats().delivered_packets}});
  report_run(dc.spec, opt.run.rho, daemon->stats(),
             daemon->live_channel_stats(), daemon->trace().slots(),
             opt.run.json, opt.run.trace_units, &daemon->energy_meter());
  std::cerr << "live: verdict=" << analysis::to_string(daemon->verdict())
            << " (" << daemon->backlog_samples().size() << " samples)\n";
  return 0;
}

int run_live_station(int argc, char** argv) {
  live::UdpStationOptions opt;
  bool have_id = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--host=", 0) == 0)
      opt.host = value("--host=");
    else if (arg.rfind("--port=", 0) == 0)
      opt.port = static_cast<std::uint16_t>(
          arg_u32(value("--port="), "--port", 65535));
    else if (arg.rfind("--id=", 0) == 0) {
      opt.station.id = arg_u32(value("--id="), "--id");
      have_id = true;
    } else if (arg.rfind("--name=", 0) == 0)
      opt.station.name = value("--name=");
    else if (arg.rfind("--unit-us=", 0) == 0)
      opt.unit_us = arg_u64(value("--unit-us="), "--unit-us");
    else if (arg.rfind("--retry-units=", 0) == 0)
      opt.station.retry_ticks =
          arg_units(value("--retry-units="), "--retry-units") * U;
    else if (arg.rfind("--max-retries=", 0) == 0)
      opt.station.max_retries = static_cast<int>(
          arg_u32(value("--max-retries="), "--max-retries", INT32_MAX));
    else if (arg == "--help" || arg == "-h")
      print_help();
    else
      usage("unknown live-station argument: " + arg);
  }
  if (opt.port == 0) usage("live-station needs --port");
  if (!have_id || opt.station.id < 1) usage("live-station needs --id >= 1");
  if (opt.station.retry_ticks < 1) usage("--retry-units must be >= 1");
  if (opt.station.max_retries < 1) usage("--max-retries must be >= 1");
  if (opt.unit_us < 1) usage("--unit-us must be >= 1");
  if (opt.station.name == "station")
    opt.station.name = "station-" + std::to_string(opt.station.id);

  std::string err;
  const int rc = live::run_station_udp(opt, &err);
  if (rc != 0)
    std::cerr << "asyncmac_cli live-station " << opt.station.id << ": "
              << (err.empty() ? std::string("failed") : err) << "\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "serve")
    return run_serve(argc - 2, argv + 2);
  if (argc > 1 && std::string(argv[1]) == "worker")
    return run_worker(argc - 2, argv + 2);
  if (argc > 1 && std::string(argv[1]) == "fuzz")
    return run_fuzz(argc - 2, argv + 2);
  if (argc > 1 && std::string(argv[1]) == "stats")
    return run_stats(argc - 2, argv + 2);
  if (argc > 1 && std::string(argv[1]) == "resume")
    return run_resume(argc - 2, argv + 2);
  if (argc > 1 && std::string(argv[1]) == "live-serve")
    return run_live_serve(argc - 2, argv + 2);
  if (argc > 1 && std::string(argv[1]) == "live-station")
    return run_live_station(argc - 2, argv + 2);
  if (argc > 1 && std::string(argv[1]) == "help") print_help();
  const Options opt = parse_args(argc, argv);
  if (!opt.telemetry_path.empty())
    enable_telemetry_or_die(opt.telemetry_path);
  if (opt.grid) return run_experiment_grid(opt);
  if (opt.msr) return run_msr(opt);

  const auto rho = util::Ratio::from_double(opt.rho);
  const snapshot::RunSpec spec = make_run_spec(opt, rho);
  std::unique_ptr<sim::Engine> engine;
  try {
    engine = snapshot::build_engine(spec);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  std::shared_ptr<snapshot::AutoSaver> saver;
  if (opt.checkpoint_every > 0) {
    saver = std::make_shared<snapshot::AutoSaver>(opt.checkpoint_dir, spec);
    engine->set_checkpoint_sink(
        [saver](const sim::Engine& e) { (*saver)(e); });
  }
  try {
    engine->run(sim::until(opt.horizon_units * U));
  } catch (const snapshot::SnapshotError& e) {
    std::cerr << "asyncmac_cli: autosave failed: " << e.what() << "\n";
    return 1;
  }
  telemetry::emit(
      "run.done",
      {{"protocol", opt.protocol},
       {"injected", engine->stats().injected_packets},
       {"delivered", engine->stats().delivered_packets}});
  report_run(spec, opt.rho, engine->stats(), engine->channel_stats(),
             engine->trace().slots(), opt.json, opt.trace_units,
             &engine->energy_meter());
  if (saver && !saver->latest().empty())
    std::cerr << "checkpoint: " << saver->latest()
              << " (continue: asyncmac_cli resume " << saver->latest()
              << ")\n";
  return 0;
}
