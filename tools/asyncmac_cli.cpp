// tools/asyncmac_cli — command-line simulator driver.
//
// Run any protocol of the library against any workload/slot adversary
// without writing code:
//
//   asyncmac_cli --protocol=ca-arrow --n=4 --r=2 --rho=0.7
//                --burst=16 --policy=perstation --horizon=100000
//   (one command line; wrapped here for width)
//
// Options:
//   --protocol=P   ao-arrow | ca-arrow | rrw | mbtf | aloha | beb |
//                  silence-tdma | adaptive-abs        (default ao-arrow)
//   --n=N          stations (default 4)
//   --r=R          asynchrony bound R (default 2)
//   --rho=F        injection rate in [0, 1] (default 0.5)
//   --burst=B      burstiness in time units (default 16)
//   --policy=S     sync | max | perstation | cyclic | random | stretch-tx
//                  (default perstation)
//   --pattern=S    roundrobin | single | random | maxqueue (default
//                  roundrobin)
//   --horizon=T    simulated time units (default 100000)
//   --seed=S       master seed (default 1)
//   --json         print stats as JSON instead of text
//   --trace=T      also render the first T time units of the schedule
//   --msr          estimate the Max Stable Rate instead of a single run
//   --grid         run a full experiment grid instead of a single run:
//                  --protocol/--n/--r/--rho/--policy accept comma lists
//                  and the cross product (x --seeds replications) runs on
//                  --jobs workers (see analysis/experiment.h)
//   --seeds=K      grid mode: seed replications per cell (default 1)
//   --jobs=J       grid mode: worker threads, 0 = all cores (default 0);
//                  records are byte-identical for every J
//   --csv=PATH     grid mode: also write the records as CSV
//
// Exit code 0 on success; 2 on bad usage.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "adversary/injectors.h"
#include "adversary/slot_policies.h"
#include "analysis/experiment.h"
#include "analysis/msr.h"
#include "analysis/registry.h"
#include "metrics/json.h"
#include "sim/engine.h"
#include "trace/renderer.h"

namespace {

using namespace asyncmac;
constexpr Tick U = kTicksPerUnit;

struct Options {
  std::string protocol = "ao-arrow";
  std::uint32_t n = 4;
  std::uint32_t r = 2;
  double rho = 0.5;
  Tick burst_units = 16;
  std::string policy = "perstation";
  std::string pattern = "roundrobin";
  Tick horizon_units = 100000;
  std::uint64_t seed = 1;
  bool json = false;
  Tick trace_units = 0;
  bool msr = false;
  bool grid = false;
  int seeds = 1;
  unsigned jobs = 0;
  std::string csv_path;
  // Raw comma-list forms of the sweepable dimensions (grid mode).
  std::string n_list = "4";
  std::string r_list = "2";
  std::string rho_list = "0.5";
};

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (from <= s.size()) {
    const std::size_t comma = s.find(',', from);
    const std::size_t to = comma == std::string::npos ? s.size() : comma;
    if (to > from) out.push_back(s.substr(from, to - from));
    if (comma == std::string::npos) break;
    from = comma + 1;
  }
  return out;
}

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "asyncmac_cli: " << error
            << "\nsee the header of tools/asyncmac_cli.cpp for options\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--protocol=", 0) == 0)
      opt.protocol = value("--protocol=");
    else if (arg.rfind("--n=", 0) == 0)
      opt.n_list = value("--n=");
    else if (arg.rfind("--r=", 0) == 0)
      opt.r_list = value("--r=");
    else if (arg.rfind("--rho=", 0) == 0)
      opt.rho_list = value("--rho=");
    else if (arg.rfind("--burst=", 0) == 0)
      opt.burst_units = std::stol(value("--burst="));
    else if (arg.rfind("--policy=", 0) == 0)
      opt.policy = value("--policy=");
    else if (arg.rfind("--pattern=", 0) == 0)
      opt.pattern = value("--pattern=");
    else if (arg.rfind("--horizon=", 0) == 0)
      opt.horizon_units = std::stol(value("--horizon="));
    else if (arg.rfind("--seed=", 0) == 0)
      opt.seed = std::stoull(value("--seed="));
    else if (arg == "--json")
      opt.json = true;
    else if (arg.rfind("--trace=", 0) == 0)
      opt.trace_units = std::stol(value("--trace="));
    else if (arg == "--msr")
      opt.msr = true;
    else if (arg == "--grid")
      opt.grid = true;
    else if (arg.rfind("--seeds=", 0) == 0)
      opt.seeds = static_cast<int>(std::stol(value("--seeds=")));
    else if (arg.rfind("--jobs=", 0) == 0)
      opt.jobs = static_cast<unsigned>(std::stoul(value("--jobs=")));
    else if (arg.rfind("--csv=", 0) == 0)
      opt.csv_path = value("--csv=");
    else
      usage("unknown argument: " + arg);
  }
  if (opt.seeds < 1) usage("--seeds must be >= 1");
  if (!opt.grid) {
    // Single-run (and MSR) modes take scalar dimensions.
    if (opt.n_list.find(',') != std::string::npos ||
        opt.r_list.find(',') != std::string::npos ||
        opt.rho_list.find(',') != std::string::npos ||
        opt.protocol.find(',') != std::string::npos ||
        opt.policy.find(',') != std::string::npos)
      usage("comma lists need --grid");
    opt.n = static_cast<std::uint32_t>(std::stoul(opt.n_list));
    opt.r = static_cast<std::uint32_t>(std::stoul(opt.r_list));
    opt.rho = std::stod(opt.rho_list);
    if (opt.n < 1) usage("--n must be >= 1");
    if (opt.r < 1) usage("--r must be >= 1");
    if (opt.rho < 0 || opt.rho > 1) usage("--rho must lie in [0, 1]");
  }
  return opt;
}

int run_experiment_grid(const Options& opt) {
  analysis::ExperimentSpec spec;
  spec.protocols = split_list(opt.protocol);
  spec.slot_policies = split_list(opt.policy);
  spec.station_counts.clear();
  for (const auto& v : split_list(opt.n_list))
    spec.station_counts.push_back(
        static_cast<std::uint32_t>(std::stoul(v)));
  spec.bounds_r.clear();
  for (const auto& v : split_list(opt.r_list))
    spec.bounds_r.push_back(static_cast<std::uint32_t>(std::stoul(v)));
  spec.rho_percents.clear();
  for (const auto& v : split_list(opt.rho_list)) {
    const double rho = std::stod(v);
    if (rho < 0 || rho > 1) usage("--rho values must lie in [0, 1]");
    spec.rho_percents.push_back(static_cast<int>(std::lround(rho * 100)));
  }
  spec.burst_units = opt.burst_units;
  spec.horizon_units = opt.horizon_units;
  spec.seed = opt.seed;
  spec.seeds = opt.seeds;
  spec.jobs = opt.jobs;

  std::vector<analysis::ExperimentRecord> records;
  try {
    records = analysis::run_grid(spec);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  std::cout << analysis::to_table(records);
  if (!opt.csv_path.empty()) {
    analysis::write_csv(records, opt.csv_path);
    std::cout << "(" << records.size() << " records written to "
              << opt.csv_path << ")\n";
  }
  return 0;
}

std::unique_ptr<sim::SlotPolicy> make_policy(const Options& opt) {
  try {
    return adversary::make_slot_policy(opt.policy, opt.n, opt.r, opt.seed);
  } catch (const std::invalid_argument&) {
    usage("unknown policy: " + opt.policy);
  }
}

std::unique_ptr<sim::InjectionPolicy> make_injector(const Options& opt,
                                                    util::Ratio rho) {
  using namespace asyncmac::adversary;
  const Tick burst = opt.burst_units * U;
  if (opt.pattern == "roundrobin")
    return std::make_unique<SaturatingInjector>(
        rho, burst, TargetPattern::kRoundRobin, 1, opt.seed + 1);
  if (opt.pattern == "single")
    return std::make_unique<SaturatingInjector>(
        rho, burst, TargetPattern::kSingle, 1, opt.seed + 1);
  if (opt.pattern == "random")
    return std::make_unique<SaturatingInjector>(
        rho, burst, TargetPattern::kRandom, 1, opt.seed + 1);
  if (opt.pattern == "maxqueue")
    return std::make_unique<MaxQueueInjector>(rho, burst);
  usage("unknown pattern: " + opt.pattern);
}

std::unique_ptr<sim::Engine> build_engine(const Options& opt,
                                          util::Ratio rho,
                                          std::uint64_t seed) {
  sim::EngineConfig cfg;
  cfg.n = opt.n;
  cfg.bound_r = opt.r;
  cfg.seed = seed;
  cfg.record_trace = opt.trace_units > 0;
  std::vector<std::unique_ptr<sim::Protocol>> ps;
  try {
    ps = analysis::make_protocols(opt.protocol, opt.n);
  } catch (const std::invalid_argument&) {
    usage("unknown protocol: " + opt.protocol);
  }
  return std::make_unique<sim::Engine>(cfg, std::move(ps), make_policy(opt),
                                       make_injector(opt, rho));
}

int run_msr(const Options& opt) {
  analysis::MsrConfig cfg;
  cfg.probe.horizon = opt.horizon_units * U;
  cfg.base_seed = opt.seed;
  const auto res = analysis::estimate_msr(
      [&](util::Ratio rho, std::uint64_t seed) {
        return build_engine(opt, rho, seed);
      },
      cfg);
  std::cout << "protocol=" << opt.protocol << " n=" << opt.n
            << " R=" << opt.r << " policy=" << opt.policy
            << "  measured MSR = " << res.msr_pct << "% (" << res.probes
            << " probes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  if (opt.grid) return run_experiment_grid(opt);
  if (opt.msr) return run_msr(opt);

  const auto rho = util::Ratio::from_double(opt.rho);
  auto engine = build_engine(opt, rho, opt.seed);
  engine->run(sim::until(opt.horizon_units * U));

  const auto& s = engine->stats();
  const auto& ch = engine->channel_stats();
  if (opt.json) {
    std::cout << metrics::to_json(s, &ch);
  } else {
    std::cout << "protocol=" << opt.protocol << " n=" << opt.n
              << " R=" << opt.r << " rho=" << opt.rho
              << " policy=" << opt.policy << " horizon="
              << opt.horizon_units << "\n"
              << "  injected   " << s.injected_packets << " packets ("
              << to_units(s.injected_cost) << " cost units)\n"
              << "  delivered  " << s.delivered_packets << "\n"
              << "  queued     " << s.queued_packets << " (max cost "
              << to_units(s.max_queued_cost) << " units)\n"
              << "  channel    " << ch.transmissions << " transmissions, "
              << ch.successful << " successful, " << ch.collided
              << " collided, " << ch.control_transmissions << " control\n";
    if (!s.latency.empty())
      std::cout << "  latency    p50 " << to_units(s.latency.quantile(0.5))
                << "  p99 " << to_units(s.latency.quantile(0.99))
                << "  max " << to_units(s.latency.max()) << " (units)\n";
  }
  if (opt.trace_units > 0) {
    trace::RenderOptions r;
    r.to = opt.trace_units * U;
    std::cout << "\n" << trace::render_schedule(engine->trace().slots(), r);
  }
  return 0;
}
