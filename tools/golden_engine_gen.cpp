// golden_engine_gen — (re)generate the pinned engine-golden corpus under
// tests/golden/engine/. The corpus pins the engine's observable behaviour
// (serialized trace + RunStats JSON) byte-for-byte, so regenerating it is
// only ever a conscious decision after an intentional semantics change —
// record the why in DESIGN.md when you do. Usage:
//
//   golden_engine_gen <output-dir>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "engine_golden_cases.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: golden_engine_gen <output-dir>\n";
    return 2;
  }
  const std::filesystem::path dir(argv[1]);
  std::filesystem::create_directories(dir);
  for (const auto& c : asyncmac::testing::engine_golden_cases()) {
    const std::filesystem::path path = dir / (c.name + ".trace");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << asyncmac::testing::run_engine_golden_case(c);
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
